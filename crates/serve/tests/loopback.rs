//! End-to-end loopback test: a real daemon on an ephemeral port, a real
//! client streaming a regime shift over TCP, and a live reconfiguration
//! observed through the wire protocol — with the full tracing pipeline
//! installed, so the run also validates the JSONL trace file and the
//! `metrics` introspection frame against the `stats` ground truth.

use rafiki::{ControllerConfig, EvalContext, RafikiTuner, TunerConfig};
use rafiki_engine::EngineConfig;
use rafiki_obs::{EventKind, JsonlSink, Level, MemorySink, TeeSink};
use rafiki_serve::{Client, ConfigSummary, Json, ServeConfig, Server};
use rafiki_workload::{
    characterize, Operation, OperationSource, ReplaySource, WorkloadGenerator, WorkloadSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const WINDOW_OPS: usize = 400;
const PHASE_WINDOWS: usize = 3;

/// Where the JSONL trace lands; CI uploads this as an artifact.
fn trace_path() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir.join("loopback_trace.jsonl")
}

/// Validates the written trace file: every line must parse as a JSON
/// object with the mandatory envelope keys, there must be at least one
/// `engine/reconfigure` span (with a duration), and exactly one
/// `controller/decision` event per closed window.
fn trace_check(path: &std::path::Path, windows_closed: u64) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let mut decisions = 0u64;
    let mut reconfigure_spans = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        lines += 1;
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        for key in ["ts_us", "kind", "level", "target", "name"] {
            assert!(v.get(key).is_some(), "trace line missing {key}: {line}");
        }
        let target = v.get("target").and_then(Json::as_str).unwrap();
        let name = v.get("name").and_then(Json::as_str).unwrap();
        let kind = v.get("kind").and_then(Json::as_str).unwrap();
        if target == "controller" && name == "decision" {
            decisions += 1;
            assert!(v.get("rationale").is_some(), "decision without rationale");
        }
        if target == "engine" && name == "reconfigure" {
            assert_eq!(kind, "span");
            assert!(v.get("duration_us").is_some(), "span without duration");
            reconfigure_spans += 1;
        }
    }
    assert!(lines > 0, "trace file is empty");
    assert_eq!(
        decisions, windows_closed,
        "one controller decision per closed window"
    );
    assert!(reconfigure_spans >= 1, "no reconfigure span in trace");
}

/// The whole scenario runs under a generous watchdog so a wedged socket
/// or a lost frame fails the test instead of hanging CI.
#[test]
fn loopback_regime_shift_retunes_the_live_engine() {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        scenario();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(600)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("loopback scenario timed out"),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("loopback scenario panicked"),
    }
}

fn scenario() {
    // Full-detail tracing: JSONL to disk (the CI artifact) plus an
    // in-memory copy for direct assertions.
    let trace_file = trace_path();
    let jsonl = Arc::new(JsonlSink::create(&trace_file).expect("create trace file"));
    let memory = Arc::new(MemorySink::new());
    rafiki_obs::set_subscriber(
        Arc::new(TeeSink::new(vec![jsonl, memory.clone()])),
        Level::Trace,
    );

    let mut tuner = RafikiTuner::new(EvalContext::small(), TunerConfig::fast());
    tuner.fit().expect("tuner fit");
    let serve_cfg = ServeConfig {
        window_ops: WINDOW_OPS,
        krd_capacity: 1 << 16,
        // Switch on any predicted improvement: the test cares that the
        // reconfiguration machinery fires, not about the switching policy.
        controller: ControllerConfig {
            min_predicted_gain: 0.0,
            ..ControllerConfig::default()
        },
        preload_keys: 20_000,
        preload_payload: 1_000,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", tuner, serve_cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");

    // The operation stream: a hard read-heavy -> write-heavy shift, built
    // up front so the daemon's streaming characterization can be checked
    // against the batch characterizer over the exact same operations.
    let spec = |rr: f64| WorkloadSpec {
        initial_keys: 20_000,
        ..WorkloadSpec::with_read_ratio(rr)
    };
    let mut ops: Vec<Operation> = Vec::new();
    let mut read_heavy = WorkloadGenerator::new(spec(0.95), 11);
    ops.extend((0..PHASE_WINDOWS * WINDOW_OPS).map(|_| read_heavy.next_op()));
    let mut write_heavy = WorkloadGenerator::new(spec(0.05), 13);
    ops.extend((0..PHASE_WINDOWS * WINDOW_OPS).map(|_| write_heavy.next_op()));
    let total_ops = ops.len() as u64;

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");

        let initial = client.config().expect("initial config");
        assert_eq!(
            initial.active,
            ConfigSummary::from(&EngineConfig::default())
        );
        assert!(initial.events.is_empty(), "no reconfigurations yet");

        let mut source = ReplaySource::new(ops.clone());
        let histogram = client.drive(&mut source, ops.len()).expect("drive stream");
        assert_eq!(histogram.total(), total_ops);

        let stats = client.stats().expect("stats");
        assert_eq!(stats.operations, total_ops);
        assert_eq!(stats.windows_closed, (2 * PHASE_WINDOWS) as u64);
        assert!(
            stats.reoptimizations >= 2,
            "the first window and the regime shift must both re-optimize, got {}",
            stats.reoptimizations
        );
        assert!(
            stats.reconfigurations >= 1,
            "the shift must apply at least one configuration"
        );

        // The streaming characterization matches the batch one over the
        // same operations (no eviction at this capacity, so exactly).
        let batch = characterize::characterize(&ops);
        assert!((stats.read_ratio - batch.read_ratio).abs() < 1e-9);
        let (s, b) = (
            stats.krd_mean.expect("stream saw reuse"),
            batch.krd_mean.expect("batch saw reuse"),
        );
        assert!((s - b).abs() / b < 1e-9, "streamed KRD {s} vs batch {b}");

        // Latency digest sanity: ordered quantiles, positive mean, and
        // the server-side count matches the client-side histogram.
        let l = stats.latency;
        assert_eq!(l.count, total_ops);
        assert!(l.p50_us <= l.p95_us && l.p95_us <= l.p99_us && l.p99_us <= l.max_us);
        assert!(l.mean_us > 0.0);
        assert_eq!(histogram.max().unwrap(), l.max_us);
        // Every window runs exactly WINDOW_OPS foreground operations, and
        // the per-window metrics delta must account for all of them.
        assert_eq!(
            stats.last_window.reads_completed + stats.last_window.writes_completed,
            WINDOW_OPS as u64
        );
        // The last window's own latency quantiles are present and ordered.
        let w = stats.last_window;
        assert!(w.p50_us > 0 && w.p50_us <= w.p99_us);
        assert!(w.p99_us <= stats.latency.max_us);

        // The `metrics` frame agrees with `stats` exactly: both are
        // maintained under the same lock, so the counts cannot drift.
        let metrics = client.metrics().expect("metrics");
        let counter = |name: &str| {
            metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("serve_ops_total"), stats.operations);
        assert_eq!(counter("serve_windows_closed_total"), stats.windows_closed);
        assert_eq!(
            counter("serve_reoptimizations_total"),
            stats.reoptimizations
        );
        assert_eq!(
            counter("serve_reconfigurations_total"),
            stats.reconfigurations
        );
        // All ops fell into closed windows here, so the registry's
        // latency histogram (fed at window close) has seen every one.
        let (_, lat) = metrics
            .histograms
            .iter()
            .find(|(n, _)| n == "serve_op_latency_us")
            .expect("latency histogram");
        assert_eq!(lat.count, total_ops);
        assert!(lat.min <= lat.p50 && lat.p50 <= lat.p99 && lat.p99 <= lat.max);
        // The Prometheus exposition carries the same numbers.
        assert!(metrics
            .prometheus
            .contains(&format!("serve_ops_total {}", stats.operations)));
        assert!(metrics
            .prometheus
            .contains("# TYPE serve_ops_total counter"));

        let report = client.config().expect("config after shift");
        assert_eq!(report.events.len() as u64, stats.reconfigurations);
        assert!(
            report.events.iter().any(|e| e.to != initial.active),
            "an applied configuration must differ from the initial one"
        );
        let last = report.events.last().expect("at least one event");
        assert_eq!(report.active, last.to, "active config is the last applied");
        assert!(last.predicted_throughput > 0.0);
        // Every applied switch names the parameters it changed.
        for e in &report.events {
            assert!(!e.diff.is_empty(), "a switch with an empty diff");
            for c in &e.diff {
                assert!(!c.param.is_empty());
                assert_ne!(c.from, c.to, "{} did not change", c.param);
            }
        }

        // A second concurrent connection sees the same aggregate state.
        let mut other = Client::connect(addr).expect("second client");
        let other_stats = other.stats().expect("second client stats");
        assert_eq!(other_stats.operations, total_ops);
        assert_eq!(other_stats.latency.count, total_ops);

        // Malformed frames get an error frame, and the connection stays
        // usable afterwards.
        let raw = TcpStream::connect(addr).expect("raw connect");
        let mut raw_reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut raw_writer = raw;
        let mut line = String::new();
        raw_writer
            .write_all(b"not json at all\n")
            .expect("send garbage");
        raw_reader.read_line(&mut line).expect("error frame");
        assert!(line.contains("\"error\""), "got: {line}");
        line.clear();
        raw_writer
            .write_all(b"{\"type\":\"op\",\"kind\":\"scan\",\"key\":1}\n")
            .expect("send invalid scan");
        raw_reader.read_line(&mut line).expect("error frame");
        assert!(line.contains("scan needs len"), "got: {line}");
        line.clear();
        raw_writer
            .write_all(b"{\"type\":\"op\",\"kind\":\"read\",\"key\":7}\n")
            .expect("send valid op");
        raw_reader.read_line(&mut line).expect("done frame");
        assert!(line.contains("\"done\""), "got: {line}");
        drop(raw_writer);

        client.shutdown().expect("shutdown");
        let report = handle.join().expect("server thread");
        assert_eq!(report.operations, total_ops + 1, "plus the raw-socket read");
        assert_eq!(report.windows_closed, (2 * PHASE_WINDOWS) as u64);
        assert_eq!(report.reconfigurations, stats.reconfigurations);
        assert!(report.reoptimizations >= stats.reoptimizations);

        // --- Trace assertions (the server is quiesced; everything the
        // pipeline emitted has reached the sinks). ---
        let events = memory.events();
        let decisions: Vec<_> = events
            .iter()
            .filter(|e| e.target == "controller" && e.name == "decision")
            .collect();
        assert_eq!(
            decisions.len() as u64,
            report.windows_closed,
            "one controller decision trace per closed window"
        );
        let closes = events
            .iter()
            .filter(|e| e.target == "serve" && e.name == "window_close")
            .count() as u64;
        assert_eq!(closes, report.windows_closed);
        let reconfigures = events
            .iter()
            .filter(|e| {
                e.target == "engine" && e.name == "reconfigure" && e.kind == EventKind::Span
            })
            .count() as u64;
        assert!(
            reconfigures >= report.reconfigurations && report.reconfigurations >= 1,
            "expected >= {} reconfigure spans, saw {reconfigures}",
            report.reconfigurations
        );

        // The on-disk JSONL trace survives the same scrutiny.
        rafiki_obs::clear_subscriber();
        trace_check(&trace_file, report.windows_closed);
    });
}
