//! Sharding invariants observable through the wire protocol: key→shard
//! routing is deterministic across daemon restarts, a one-shard cluster
//! is indistinguishable from the unsharded daemon, per-shard stats sum
//! exactly to the aggregate, and client pipelining is a transport
//! optimization only.

use rafiki::{CollectionPlan, ControllerConfig, EvalContext, RafikiTuner, TunerConfig};
use rafiki_serve::{Client, ConfigReport, MetricsReport, ServeConfig, Server, StatsReport};
use rafiki_workload::{
    BenchmarkSpec, Operation, OperationSource, ReplaySource, WorkloadGenerator, WorkloadSpec,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const WINDOW_OPS: usize = 300;
const PRELOAD_KEYS: u64 = 5_000;

/// A deliberately tiny fitted tuner: these tests exercise routing and
/// aggregation, not tuning quality, so the fit just needs to succeed
/// fast.
fn tiny_tuner() -> RafikiTuner {
    let ctx = EvalContext {
        bench: BenchmarkSpec {
            duration_secs: 0.5,
            warmup_secs: 0.1,
            clients: 8,
            sample_window_secs: 0.25,
        },
        workload: WorkloadSpec {
            initial_keys: PRELOAD_KEYS,
            ..WorkloadSpec::with_read_ratio(0.5)
        },
        preload_keys: PRELOAD_KEYS,
        preload_payload: 200,
        ..EvalContext::small()
    };
    let cfg = TunerConfig {
        collection: CollectionPlan {
            configurations: 3,
            read_ratios: vec![0.0, 0.5, 1.0],
            ..CollectionPlan::default()
        },
        ..TunerConfig::fast()
    };
    let mut tuner = RafikiTuner::new(ctx, cfg);
    tuner.fit().expect("tiny tuner fit");
    tuner
}

fn serve_config(shards: usize) -> ServeConfig {
    ServeConfig {
        window_ops: WINDOW_OPS,
        krd_capacity: 1 << 14,
        controller: ControllerConfig {
            min_predicted_gain: 0.0,
            ..ControllerConfig::default()
        },
        preload_keys: PRELOAD_KEYS,
        preload_payload: 200,
        shards,
        ..ServeConfig::default()
    }
}

fn op_stream(ops: usize, seed: u64) -> Vec<Operation> {
    let spec = WorkloadSpec {
        initial_keys: PRELOAD_KEYS,
        ..WorkloadSpec::with_read_ratio(0.6)
    };
    let mut generator = WorkloadGenerator::new(spec, seed);
    (0..ops).map(|_| generator.next_op()).collect()
}

/// Runs `ops` against a fresh daemon and returns the full observable
/// state: stats, config, metrics, and the client-side histogram total.
fn run_cluster(
    shards: usize,
    ops: &[Operation],
    batch: usize,
    inflight: usize,
) -> (StatsReport, ConfigReport, MetricsReport, u64) {
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config(shards)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        let mut source = ReplaySource::new(ops.to_vec());
        let histogram = client
            .drive_pipelined(&mut source, ops.len(), batch, inflight)
            .expect("drive");
        let stats = client.stats().expect("stats");
        let config = client.config().expect("config");
        let metrics = client.metrics().expect("metrics");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        (stats, config, metrics, histogram.total())
    })
}

/// Blanks the aggregate `last_window`: it reports whichever shard
/// closed a window most recently in *real* time, so it is the one
/// stats field that legitimately varies across runs of a multi-shard
/// cluster (per-shard rows stay deterministic).
fn scrubbed(mut stats: StatsReport) -> StatsReport {
    stats.last_window = rafiki_serve::WindowActivity::default();
    stats
}

fn counter(metrics: &MetricsReport, name: &str) -> u64 {
    metrics
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing counter {name}"))
        .1
}

/// Routing is a pure function of the key and the (fixed) ring seed: two
/// daemon instances started from scratch route an identical op stream
/// to identical shards, so every per-shard row matches across restarts.
#[test]
fn shard_routing_is_deterministic_across_restarts() {
    let ops = op_stream(3 * WINDOW_OPS, 41);
    let (first, _, _, _) = run_cluster(3, &ops, 64, 1);
    let (second, _, _, _) = run_cluster(3, &ops, 64, 1);
    assert_eq!(first.shards.len(), 3);
    assert_eq!(
        scrubbed(first.clone()),
        scrubbed(second),
        "two fresh daemons disagree on per-shard state for the same stream"
    );
    // The stream actually spread across shards (ring balance).
    for shard in &first.shards {
        assert!(
            shard.operations > 0,
            "shard {} received no operations",
            shard.shard
        );
    }
}

/// A one-shard cluster reports its single shard's row as the aggregate,
/// field for field — the `--shards 1` daemon is the old unsharded one.
#[test]
fn single_shard_aggregate_equals_its_only_shard_row() {
    let ops = op_stream(2 * WINDOW_OPS, 43);
    let (stats, config, _, client_count) = run_cluster(1, &ops, 64, 1);
    assert_eq!(client_count, ops.len() as u64);
    assert_eq!(stats.shards.len(), 1);
    let shard = &stats.shards[0];
    assert_eq!(shard.shard, 0);
    assert_eq!(shard.operations, stats.operations);
    assert_eq!(shard.read_ratio, stats.read_ratio);
    assert_eq!(shard.krd_mean, stats.krd_mean);
    assert_eq!(shard.windows_closed, stats.windows_closed);
    assert_eq!(shard.reoptimizations, stats.reoptimizations);
    assert_eq!(shard.reconfigurations, stats.reconfigurations);
    assert_eq!(shard.latency, stats.latency);
    assert_eq!(shard.last_window, stats.last_window);
    // One shard means no scale-out event and one per-shard config row.
    assert!(config.cluster_events.is_empty());
    assert_eq!(config.shards.len(), 1);
    assert_eq!(config.shards[0].active, config.active);
}

/// Per-shard rows sum exactly to the aggregate — counts as integers,
/// the read ratio through its sufficient statistics — and the labeled
/// metrics series sum to the unlabeled aggregate series.
#[test]
fn per_shard_stats_sum_exactly_to_the_aggregate() {
    let ops = op_stream(4 * WINDOW_OPS, 47);
    let (stats, config, metrics, _) = run_cluster(3, &ops, 64, 1);
    assert_eq!(stats.operations, ops.len() as u64);
    assert_eq!(
        stats.shards.iter().map(|s| s.operations).sum::<u64>(),
        stats.operations
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.windows_closed).sum::<u64>(),
        stats.windows_closed
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.reoptimizations).sum::<u64>(),
        stats.reoptimizations
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.reconfigurations).sum::<u64>(),
        stats.reconfigurations
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.latency.count).sum::<u64>(),
        stats.latency.count
    );
    // read_ratio = Σreads / Σops: reconstruct each shard's integer read
    // count and compare exactly.
    let reads: u64 = stats
        .shards
        .iter()
        .map(|s| (s.read_ratio * s.operations as f64).round() as u64)
        .sum();
    assert_eq!(
        (stats.read_ratio * stats.operations as f64).round() as u64,
        reads
    );
    // The audit trail agrees with the per-shard counts.
    assert_eq!(config.events.len() as u64, stats.reconfigurations);
    for shard in &stats.shards {
        let events = config
            .events
            .iter()
            .filter(|e| e.shard == shard.shard)
            .count() as u64;
        assert_eq!(events, shard.reconfigurations);
    }
    // Labeled registry series sum exactly to the aggregate series.
    for name in [
        "serve_ops_total",
        "serve_windows_closed_total",
        "serve_reconfigurations_total",
    ] {
        let labeled: u64 = (0..stats.shards.len())
            .map(|s| counter(&metrics, &format!("{name}{{shard=\"{s}\"}}")))
            .sum();
        assert_eq!(labeled, counter(&metrics, name), "{name} does not sum");
    }
    assert!(metrics.prometheus.contains("serve_ops_total{shard=\"0\"}"));
}

/// Pipelining is a transport optimization only: the same stream driven
/// with an 8-frame window leaves the cluster in exactly the state strict
/// request/response driving does.
#[test]
fn pipelined_and_unpipelined_runs_are_indistinguishable() {
    let ops = op_stream(3 * WINDOW_OPS, 53);
    let (sequential, _, _, seq_count) = run_cluster(2, &ops, 32, 1);
    let (pipelined, _, _, pipe_count) = run_cluster(2, &ops, 32, 8);
    assert_eq!(seq_count, ops.len() as u64);
    assert_eq!(pipe_count, ops.len() as u64);
    assert_eq!(
        scrubbed(sequential),
        scrubbed(pipelined),
        "a pipelined run must be observably identical to a sequential one"
    );
    // Unbatched pipelining (single-op frames, windowed) too.
    let short = &ops[..WINDOW_OPS];
    let (seq_1, _, _, _) = run_cluster(2, short, 1, 1);
    let (pipe_1, _, _, _) = run_cluster(2, short, 1, 16);
    assert_eq!(scrubbed(seq_1), scrubbed(pipe_1));
}

/// A burst of frames written in one TCP segment is answered with one
/// response per frame, in order (the server drains buffered frames and
/// answers them with a single vectored write).
#[test]
fn frame_bursts_are_answered_in_order() {
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config(2)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let raw = TcpStream::connect(addr).expect("raw connect");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut writer = raw;
        // Five op frames, a blank line, and a stats frame in one write.
        let mut burst = String::new();
        for key in [1u64, 2, 3, 4, 5] {
            burst.push_str(&format!(
                "{{\"type\":\"op\",\"kind\":\"read\",\"key\":{key}}}\n"
            ));
        }
        burst.push('\n');
        burst.push_str("{\"type\":\"stats\"}\n");
        writer.write_all(burst.as_bytes()).expect("write burst");
        let mut line = String::new();
        for i in 0..5 {
            line.clear();
            reader.read_line(&mut line).expect("response");
            assert!(line.contains("\"done\""), "frame {i}: {line}");
        }
        line.clear();
        reader.read_line(&mut line).expect("stats response");
        assert!(line.contains("\"stats\""), "got: {line}");
        assert!(line.contains("\"operations\":5"), "got: {line}");
        drop(writer);
        let mut client = Client::connect(addr).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    });
}
