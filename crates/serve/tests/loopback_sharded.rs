//! End-to-end sharded loopback: a real 2-shard daemon on an ephemeral
//! port, a pipelined client streaming a regime shift over TCP, and
//! per-shard live reconfigurations observed through the wire protocol —
//! plus a lockstep-mode run where one decision stream reconfigures both
//! shards to the same configuration.

use rafiki::{CollectionPlan, ControllerConfig, EvalContext, RafikiTuner, TunerConfig};
use rafiki_serve::{Client, ServeConfig, Server};
use rafiki_workload::{
    BenchmarkSpec, Operation, OperationSource, ReplaySource, WorkloadGenerator, WorkloadSpec,
};
use std::sync::mpsc;
use std::time::Duration;

const WINDOW_OPS: usize = 300;
const PRELOAD_KEYS: u64 = 10_000;
const SHARDS: usize = 2;
/// Ops per phase — enough that *each* shard closes multiple windows per
/// phase even at an uneven (but ring-balanced, so >25/75) key split.
const PHASE_OPS: usize = 8 * WINDOW_OPS;

fn tiny_tuner() -> RafikiTuner {
    let ctx = EvalContext {
        bench: BenchmarkSpec {
            duration_secs: 0.5,
            warmup_secs: 0.1,
            clients: 8,
            sample_window_secs: 0.25,
        },
        workload: WorkloadSpec {
            initial_keys: PRELOAD_KEYS,
            ..WorkloadSpec::with_read_ratio(0.5)
        },
        preload_keys: PRELOAD_KEYS,
        preload_payload: 200,
        ..EvalContext::small()
    };
    let cfg = TunerConfig {
        collection: CollectionPlan {
            configurations: 3,
            read_ratios: vec![0.0, 0.5, 1.0],
            ..CollectionPlan::default()
        },
        ..TunerConfig::fast()
    };
    let mut tuner = RafikiTuner::new(ctx, cfg);
    tuner.fit().expect("tiny tuner fit");
    tuner
}

fn serve_config(lockstep: bool) -> ServeConfig {
    ServeConfig {
        window_ops: WINDOW_OPS,
        krd_capacity: 1 << 14,
        // Switch on any predicted improvement: the test cares that
        // per-shard reconfiguration fires, not about switching policy.
        controller: ControllerConfig {
            min_predicted_gain: 0.0,
            ..ControllerConfig::default()
        },
        preload_keys: PRELOAD_KEYS,
        preload_payload: 200,
        shards: SHARDS,
        lockstep,
    }
}

/// A hard read-heavy → write-heavy regime shift. Keys are drawn from
/// the same space in both phases, so both shards see the shift.
fn regime_shift_stream() -> Vec<Operation> {
    let spec = |rr: f64| WorkloadSpec {
        initial_keys: PRELOAD_KEYS,
        ..WorkloadSpec::with_read_ratio(rr)
    };
    let mut ops = Vec::with_capacity(2 * PHASE_OPS);
    let mut read_heavy = WorkloadGenerator::new(spec(0.95), 11);
    ops.extend((0..PHASE_OPS).map(|_| read_heavy.next_op()));
    let mut write_heavy = WorkloadGenerator::new(spec(0.05), 13);
    ops.extend((0..PHASE_OPS).map(|_| write_heavy.next_op()));
    ops
}

/// The whole scenario runs under a generous watchdog so a wedged socket
/// or a lost frame fails the test instead of hanging CI.
#[test]
fn sharded_loopback_regime_shift_retunes_every_shard() {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        independent_scenario();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(600)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("sharded loopback timed out"),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("sharded loopback panicked"),
    }
}

fn independent_scenario() {
    let ops = regime_shift_stream();
    let total_ops = ops.len() as u64;
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config(false)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        let mut source = ReplaySource::new(ops.clone());
        let histogram = client
            .drive_pipelined(&mut source, ops.len(), 64, 4)
            .expect("drive");
        assert_eq!(histogram.total(), total_ops);

        let stats = client.stats().expect("stats");
        assert_eq!(stats.operations, total_ops);
        assert_eq!(stats.shards.len(), SHARDS);

        // Every shard did real, independent work across the shift:
        // multiple windows, at least one live reconfiguration each.
        for shard in &stats.shards {
            assert!(
                shard.windows_closed >= 2,
                "shard {} closed only {} windows",
                shard.shard,
                shard.windows_closed
            );
            assert!(
                shard.reconfigurations >= 1,
                "shard {} never reconfigured across the regime shift",
                shard.shard
            );
            assert!(shard.operations > 0);
            assert!(shard.latency.count == shard.operations);
        }

        // Per-shard rows sum exactly to the aggregate.
        assert_eq!(
            stats.shards.iter().map(|s| s.operations).sum::<u64>(),
            stats.operations
        );
        assert_eq!(
            stats.shards.iter().map(|s| s.windows_closed).sum::<u64>(),
            stats.windows_closed
        );
        assert_eq!(
            stats.shards.iter().map(|s| s.reconfigurations).sum::<u64>(),
            stats.reconfigurations
        );
        assert_eq!(
            stats.shards.iter().map(|s| s.latency.count).sum::<u64>(),
            stats.latency.count
        );
        assert_eq!(stats.latency.count, total_ops);

        // The labeled metrics series carry the same per-shard truth and
        // sum exactly to the aggregate series.
        let metrics = client.metrics().expect("metrics");
        let counter = |name: &str| {
            metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        for (name, aggregate) in [
            ("serve_ops_total", stats.operations),
            ("serve_windows_closed_total", stats.windows_closed),
            ("serve_reconfigurations_total", stats.reconfigurations),
        ] {
            assert_eq!(counter(name), aggregate);
            let summed: u64 = (0..SHARDS)
                .map(|s| counter(&format!("{name}{{shard=\"{s}\"}}")))
                .sum();
            assert_eq!(summed, aggregate, "{name} labeled series do not sum");
        }
        for (shard, row) in stats.shards.iter().enumerate() {
            assert_eq!(
                counter(&format!("serve_ops_total{{shard=\"{shard}\"}}")),
                row.operations
            );
        }
        assert!(metrics.prometheus.contains("serve_ops_total{shard=\"1\"}"));

        // The audit trail: per-shard reconfig events plus the scale-out
        // cluster event recorded at bootstrap.
        let report = client.config().expect("config");
        assert_eq!(report.shards.len(), SHARDS);
        assert_eq!(report.events.len() as u64, stats.reconfigurations);
        for shard in 0..SHARDS as u64 {
            assert!(
                report.events.iter().any(|e| e.shard == shard),
                "no reconfiguration event for shard {shard}"
            );
        }
        for e in &report.events {
            assert!(!e.diff.is_empty(), "a switch with an empty diff");
        }
        let scale_out = report
            .cluster_events
            .iter()
            .find(|e| e.kind == "scale_out")
            .expect("scale-out event on the audit trail");
        assert_eq!(scale_out.shards, SHARDS as u64);
        assert!(
            scale_out.moved_fraction > 0.0 && scale_out.moved_fraction < 1.0,
            "scale-out moved fraction {} out of range",
            scale_out.moved_fraction
        );
        // Each shard's active config is the last one applied to it.
        for row in &report.shards {
            let last = report
                .events
                .iter()
                .rev()
                .find(|e| e.shard == row.shard)
                .expect("every shard reconfigured at least once");
            assert_eq!(row.active, last.to);
        }

        client.shutdown().expect("shutdown");
        let run = handle.join().expect("server thread");
        assert_eq!(run.operations, total_ops);
        assert_eq!(run.windows_closed, stats.windows_closed);
        assert_eq!(run.reconfigurations, stats.reconfigurations);
    });
}

/// Lockstep mode: one decision stream drives both shards, every switch
/// lands on both, and the cluster stays homogeneous.
#[test]
fn lockstep_cluster_reconfigures_all_shards_together() {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        lockstep_scenario();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(600)) {
        Ok(()) => {}
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("lockstep loopback timed out"),
        Err(mpsc::RecvTimeoutError::Disconnected) => panic!("lockstep loopback panicked"),
    }
}

fn lockstep_scenario() {
    let ops = regime_shift_stream();
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config(true)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        let mut source = ReplaySource::new(ops.clone());
        client
            .drive_pipelined(&mut source, ops.len(), 64, 4)
            .expect("drive");

        let stats = client.stats().expect("stats");
        let report = client.config().expect("config");
        assert!(
            stats.reconfigurations >= 2,
            "lockstep run never switched (got {} reconfigurations)",
            stats.reconfigurations
        );
        // Homogeneous cluster: both shards run the same configuration.
        assert_eq!(report.shards.len(), SHARDS);
        assert_eq!(report.shards[0].active, report.shards[1].active);
        // Every shard was reconfigured (the lockstep fan-out reached
        // shards whose own windows did not trigger the decision).
        for shard in 0..SHARDS as u64 {
            assert!(
                report.events.iter().any(|e| e.shard == shard),
                "lockstep never reconfigured shard {shard}"
            );
        }
        // The fan-out itself is on the cluster audit trail.
        let lockstep = report
            .cluster_events
            .iter()
            .find(|e| e.kind == "lockstep_reconfigure")
            .expect("lockstep_reconfigure cluster event");
        assert_eq!(lockstep.shards, SHARDS as u64);

        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    });
}
