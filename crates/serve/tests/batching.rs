//! Loopback tests for the batched wire path: a batched run must be
//! indistinguishable from an unbatched one at the engine level, and
//! no client-side latency sample may be lost to the per-connection
//! merge batching when a connection closes.

use rafiki::{CollectionPlan, ControllerConfig, EvalContext, RafikiTuner, TunerConfig};
use rafiki_serve::{Client, ServeConfig, Server, StatsReport};
use rafiki_workload::{
    BenchmarkSpec, Operation, OperationSource, ReplaySource, WorkloadGenerator, WorkloadSpec,
};
use std::time::{Duration, Instant};

const WINDOW_OPS: usize = 300;

/// A deliberately tiny fitted tuner: these tests exercise the wire
/// path, not the tuning quality, so the fit just needs to succeed fast.
fn tiny_tuner() -> RafikiTuner {
    let preload_keys = 5_000;
    let ctx = EvalContext {
        bench: BenchmarkSpec {
            duration_secs: 0.5,
            warmup_secs: 0.1,
            clients: 8,
            sample_window_secs: 0.25,
        },
        workload: WorkloadSpec {
            initial_keys: preload_keys,
            ..WorkloadSpec::with_read_ratio(0.5)
        },
        preload_keys,
        preload_payload: 200,
        ..EvalContext::small()
    };
    let cfg = TunerConfig {
        collection: CollectionPlan {
            configurations: 3,
            read_ratios: vec![0.0, 0.5, 1.0],
            ..CollectionPlan::default()
        },
        ..TunerConfig::fast()
    };
    let mut tuner = RafikiTuner::new(ctx, cfg);
    tuner.fit().expect("tiny tuner fit");
    tuner
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        window_ops: WINDOW_OPS,
        krd_capacity: 1 << 14,
        controller: ControllerConfig {
            min_predicted_gain: 0.0,
            ..ControllerConfig::default()
        },
        preload_keys: 5_000,
        preload_payload: 200,
        ..ServeConfig::default()
    }
}

/// Runs `ops` against a fresh daemon with the given frame size and
/// returns the final aggregate stats plus the client-side histogram
/// count.
fn run_stream(tuner: RafikiTuner, ops: &[Operation], batch: usize) -> (StatsReport, u64) {
    let server = Server::bind("127.0.0.1:0", tuner, serve_config()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        let mut source = ReplaySource::new(ops.to_vec());
        let histogram = client
            .drive_batched(&mut source, ops.len(), batch)
            .expect("drive");
        let stats = client.stats().expect("stats");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        (stats, histogram.total())
    })
}

/// The tentpole invariant: batching is a transport optimization only.
/// The same operation stream, framed 1-per-request or 256-per-request,
/// must leave the engine, the characterizer, the controller, and the
/// latency digest in byte-identical states.
#[test]
fn batched_and_unbatched_runs_produce_identical_engine_metrics() {
    let spec = |rr: f64| WorkloadSpec {
        initial_keys: 5_000,
        ..WorkloadSpec::with_read_ratio(rr)
    };
    let mut ops: Vec<Operation> = Vec::new();
    let mut read_heavy = WorkloadGenerator::new(spec(0.9), 21);
    ops.extend((0..2 * WINDOW_OPS).map(|_| read_heavy.next_op()));
    let mut write_heavy = WorkloadGenerator::new(spec(0.1), 23);
    ops.extend((0..2 * WINDOW_OPS).map(|_| write_heavy.next_op()));

    let (unbatched, unbatched_count) = run_stream(tiny_tuner(), &ops, 1);
    let (batched, batched_count) = run_stream(tiny_tuner(), &ops, 256);

    assert_eq!(unbatched_count, ops.len() as u64);
    assert_eq!(batched_count, ops.len() as u64);
    assert_eq!(
        unbatched, batched,
        "batched and unbatched runs disagree on engine metrics"
    );
    // The run did something nontrivial: windows closed and the stream
    // shift was observed.
    assert_eq!(batched.operations, ops.len() as u64);
    assert_eq!(batched.windows_closed, 4);
    assert!(batched.reoptimizations >= 1);
}

/// Regression test for the merge-batch loss bug: per-client latency
/// samples are merged into the shared histogram in batches of 128, and
/// the residual (up to 127 samples) used to be dropped when a
/// connection closed without a final `stats` call.
#[test]
fn residual_latency_samples_survive_disconnect() {
    const RESIDUAL_OPS: usize = 5;
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));

        {
            let mut client = Client::connect(addr).expect("connect");
            let mut gen = WorkloadGenerator::new(
                WorkloadSpec {
                    initial_keys: 5_000,
                    ..WorkloadSpec::with_read_ratio(0.5)
                },
                31,
            );
            for _ in 0..RESIDUAL_OPS {
                client.op(gen.next_op()).expect("op");
            }
            // Dropped here with 5 samples still in the connection's
            // local merge batch.
        }

        // The flush happens when the daemon notices the disconnect, so
        // poll the aggregate histogram from a second connection.
        let mut observer = Client::connect(addr).expect("observer connect");
        let deadline = Instant::now() + Duration::from_secs(30);
        let count = loop {
            let count = observer.stats().expect("stats").latency.count;
            if count == RESIDUAL_OPS as u64 || Instant::now() > deadline {
                break count;
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        assert_eq!(
            count, RESIDUAL_OPS as u64,
            "latency samples below the merge-batch size were lost at disconnect"
        );

        observer.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    });
}

/// A connection's own `stats` call folds its not-yet-merged samples in
/// immediately — no second connection or disconnect required.
#[test]
fn stats_request_flushes_the_callers_merge_batch() {
    const OPS: usize = 3;
    let server = Server::bind("127.0.0.1:0", tiny_tuner(), serve_config()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        let mut gen = WorkloadGenerator::new(
            WorkloadSpec {
                initial_keys: 5_000,
                ..WorkloadSpec::with_read_ratio(0.5)
            },
            37,
        );
        for _ in 0..OPS {
            client.op(gen.next_op()).expect("op");
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.latency.count, OPS as u64);
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    });
}
