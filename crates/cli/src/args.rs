//! A small dependency-free flag parser for the CLI: `--name value` pairs
//! plus a positional subcommand.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a flag without a value, an unexpected
    /// positional, or a repeated flag.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if name == "help" || name == "quick" {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?
                };
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{name} given twice")));
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgError(format!("unexpected argument: {arg}")));
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map_or(default, String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} {v}: not a valid number"))),
        }
    }

    /// Names of flags that were provided.
    pub fn flag_names(&self) -> Vec<&str> {
        self.flags.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("tune --rr 0.9 --configs 8").unwrap();
        assert_eq!(a.command.as_deref(), Some("tune"));
        assert_eq!(a.get_or("rr", "0"), "0.9");
        assert_eq!(a.num_or("configs", 0usize).unwrap(), 8);
        assert_eq!(a.num_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse("screen --quick --levels 2").unwrap();
        assert!(a.has("quick"));
        assert_eq!(a.num_or("levels", 4usize).unwrap(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("tune --rr").is_err());
        assert!(parse("tune extra positional").is_err());
        assert!(parse("tune --rr 1 --rr 2").is_err());
        assert!(parse("tune --rr abc").unwrap().num_or("rr", 0.5f64).is_err());
    }

    #[test]
    fn empty_input_is_valid() {
        let a = parse("").unwrap();
        assert_eq!(a.command, None);
    }
}
