//! A small dependency-free flag parser for the CLI: `--name value` /
//! `--name=value` pairs plus a positional subcommand, with a declared set
//! of boolean flags that take no value.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// Flags come in three forms:
    ///
    /// - `--name value` — a valued flag consuming the next argument;
    /// - `--name=value` — the same, inline (works for boolean flags too,
    ///   e.g. `--quick=false`);
    /// - `--name` — allowed only for names in `boolean_flags`, recorded
    ///   as `"true"`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a non-boolean flag without a value, an
    /// unexpected positional, or a repeated flag.
    pub fn parse<I: IntoIterator<Item = String>>(
        argv: I,
        boolean_flags: &[&str],
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (name, value) = if let Some((name, value)) = name.split_once('=') {
                    (name, value.to_string())
                } else if boolean_flags.contains(&name) {
                    (name, "true".to_string())
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    (name, value)
                };
                if name.is_empty() {
                    return Err(ArgError(format!("malformed flag: {arg}")));
                }
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{name} given twice")));
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgError(format!("unexpected argument: {arg}")));
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map_or(default, String::as_str)
    }

    /// Whether a boolean flag is on: present and not explicitly
    /// `--name=false`.
    pub fn has(&self, name: &str) -> bool {
        self.flags.get(name).is_some_and(|v| v != "false")
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} {v}: not a valid number"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boolean-flag set used by most tests (mirrors the CLI's).
    const BOOLS: &[&str] = &["help", "quick", "proactive"];

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from), BOOLS)
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("tune --rr 0.9 --configs 8").unwrap();
        assert_eq!(a.command.as_deref(), Some("tune"));
        assert_eq!(a.get_or("rr", "0"), "0.9");
        assert_eq!(a.num_or("configs", 0usize).unwrap(), 8);
        assert_eq!(a.num_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse("screen --quick --levels 2").unwrap();
        assert!(a.has("quick"));
        assert_eq!(a.num_or("levels", 4usize).unwrap(), 2);
    }

    #[test]
    fn declared_boolean_set_is_honoured() {
        // A name outside the declared set still consumes a value…
        let a = Args::parse(["serve", "--verbose", "yes"].map(String::from), &["help"]).unwrap();
        assert_eq!(a.get_or("verbose", ""), "yes");
        // …and without one it errors instead of silently becoming a bool.
        assert!(Args::parse(["serve", "--verbose"].map(String::from), &["help"]).is_err());
        // The same name declared boolean parses standalone.
        let b = Args::parse(["serve", "--verbose"].map(String::from), &["verbose"]).unwrap();
        assert!(b.has("verbose"));
    }

    #[test]
    fn equals_form_parses_values() {
        let a = parse("bench --rr=0.25 --cm=leveled --quick").unwrap();
        assert_eq!(a.num_or("rr", 0.0f64).unwrap(), 0.25);
        assert_eq!(a.get_or("cm", ""), "leveled");
        assert!(a.has("quick"));
    }

    #[test]
    fn equals_form_can_disable_booleans() {
        let a = parse("tune --quick=false").unwrap();
        assert!(!a.has("quick"), "--quick=false must read as off");
        let b = parse("tune --quick=true").unwrap();
        assert!(b.has("quick"));
        // An empty value is kept verbatim (and is not "false").
        let c = parse("tune --tag=").unwrap();
        assert_eq!(c.get_or("tag", "missing"), "");
        assert!(c.has("tag"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("tune --rr").is_err());
        assert!(parse("tune extra positional").is_err());
        assert!(parse("tune --rr 1 --rr 2").is_err());
        assert!(
            parse("tune --rr=1 --rr 2").is_err(),
            "mixed forms still collide"
        );
        assert!(parse("tune --rr abc")
            .unwrap()
            .num_or("rr", 0.5f64)
            .is_err());
        assert!(parse("tune --=3").is_err(), "empty flag name rejected");
    }

    #[test]
    fn empty_input_is_valid() {
        let a = parse("").unwrap();
        assert_eq!(a.command, None);
    }
}
