//! `rafiki-tune` — command-line front-end for the Rafiki reproduction.
//!
//! ```text
//! rafiki-tune screen  [--rr 0.8] [--levels 4] [--quick]
//! rafiki-tune tune    [--rr 0.9] [--configs 8] [--quick]
//! rafiki-tune bench   [--rr 0.5] [--cm size-tiered|leveled] [--cw 32]
//!                     [--fcz 256] [--mt 0.3] [--cc 2] [--seconds 4]
//! rafiki-tune trace   [--days 4] [--seed 0]
//! rafiki-tune ycsb    [--preset A|B|C|D|F] [--seconds 3]
//! ```

mod args;

use args::{ArgError, Args};
use rafiki::{
    identify_key_parameters, ControllerConfig, EvalContext, RafikiTuner, ScreeningConfig,
    TunerConfig,
};
use rafiki_engine::{run_benchmark, CompactionMethod, Engine, EngineConfig, ServerSpec};
use rafiki_serve::{Client, ServeConfig, Server};
use rafiki_workload::{
    BenchmarkSpec, MgRastModel, Regime, WorkloadGenerator, WorkloadSpec, YcsbPreset,
};

const USAGE: &str = "\
rafiki-tune — parameter tuning for the simulated NoSQL datastore

USAGE:
  rafiki-tune screen  [--rr 0.8] [--levels 4] [--quick]
      ANOVA-screen all 30 parameters; print the ranking and key set.
  rafiki-tune tune    [--rr 0.9] [--configs 8] [--quick]
                      [--strategy ga|bestconfig|latent|random]
      Collect data, train the surrogate, search a config for --rr with
      the chosen strategy (default ga — the paper's loop).
  rafiki-tune bench   [--rr 0.5] [--cm size-tiered|leveled] [--cw 32]
                      [--fcz 256] [--mt 0.3] [--cc 2] [--seconds 4]
      One benchmark of an explicit configuration.
  rafiki-tune trace   [--days 4] [--seed 0]
      Print an MG-RAST-like read-ratio trace as CSV.
  rafiki-tune replay  --trace FILE [--window 0] [--seconds 3]
      Benchmark one window of a saved trace on the default configuration.
  rafiki-tune ycsb    [--preset A] [--seconds 3]
      Benchmark a standard YCSB preset on the default configuration.
  rafiki-tune serve   [--addr 127.0.0.1:7878] [--window 1000]
                      [--shards 1] [--lockstep] [--proactive] [--quick]
                      [--trace FILE]
                      [--log-level error|warn|info|debug|trace]
      Fit the tuner, then run the online tuning daemon until shutdown.
      --shards N runs N engine shards behind one consistent-hash
      router, each tuned independently (or together with --lockstep).
      --trace writes every event as JSONL to FILE; --log-level prints
      human-readable lines to stderr at that severity and up.
  rafiki-tune client  [--addr 127.0.0.1:7878] [--rr 0.9] [--ops 2000]
                      [--batch 64] [--inflight 1] [--seed 0]
                      | --stats | --metrics | --shutdown
      Stream generated operations at a daemon (framed --batch ops per
      request; --batch 1 sends one op per frame; --inflight N pipelines
      up to N frames on the wire) and print the latency digest, or just
      query / stop it. --metrics prints the daemon's Prometheus text
      exposition.

Boolean flags (--quick, --proactive, --lockstep, --stats, --metrics,
--shutdown, --help) take no value; --flag=value works for every flag.
";

/// Flags that take no value (`--quick` rather than `--quick true`).
const BOOL_FLAGS: &[&str] = &[
    "help",
    "quick",
    "proactive",
    "lockstep",
    "stats",
    "metrics",
    "shutdown",
];

fn main() {
    let args = match Args::parse(std::env::args().skip(1), BOOL_FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.has("help") || args.command.is_none() {
        println!("{USAGE}");
        return;
    }
    let result = match args.command.as_deref() {
        Some("screen") => cmd_screen(&args),
        Some("tune") => cmd_tune(&args),
        Some("bench") => cmd_bench(&args),
        Some("trace") => cmd_trace(&args),
        Some("replay") => cmd_replay(&args),
        Some("ycsb") => cmd_ycsb(&args),
        Some("serve") => cmd_serve(&args),
        Some("client") => cmd_client(&args),
        Some(other) => Err(ArgError(format!("unknown command: {other}"))),
        None => unreachable!("handled above"),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn context(quick: bool) -> EvalContext {
    if quick {
        EvalContext::small()
    } else {
        EvalContext::default()
    }
}

fn cmd_screen(args: &Args) -> Result<(), ArgError> {
    let cfg = ScreeningConfig {
        read_ratio: args.num_or("rr", 0.8)?,
        levels: args.num_or("levels", 4usize)?,
        ..ScreeningConfig::default()
    };
    let ctx = context(args.has("quick"));
    eprintln!("screening 30 parameters at RR={:.2}…", cfg.read_ratio);
    let report = identify_key_parameters(&ctx, &cfg);
    println!("{:<4} {:<44} {:>12}", "rank", "parameter", "sd(ops/s)");
    for (i, s) in report.screens.iter().enumerate() {
        println!(
            "{:<4} {:<44} {:>12.0}",
            i + 1,
            s.info.name,
            s.effect.std_dev
        );
    }
    println!(
        "\nkey parameters: {}",
        report
            .key_parameters
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), ArgError> {
    let rr: f64 = args.num_or("rr", 0.9)?;
    if !(0.0..=1.0).contains(&rr) {
        return Err(ArgError(format!("--rr {rr} must be within [0, 1]")));
    }
    let mut cfg = TunerConfig::fast();
    cfg.collection.configurations = args.num_or("configs", 8usize)?;
    let ctx = context(args.has("quick"));
    eprintln!(
        "collecting {} configs x {} workloads…",
        cfg.collection.configurations,
        cfg.collection.read_ratios.len()
    );
    let mut tuner = RafikiTuner::new(ctx, cfg);
    let report = tuner
        .fit()
        .map_err(|e| ArgError(format!("tuning failed: {e}")))?;
    eprintln!(
        "trained on {} samples over [{}]",
        report.samples_collected,
        report.key_parameters.join(", ")
    );
    let strategy_name = args.get_or("strategy", "ga").to_string();
    let best = match strategy_name.as_str() {
        // The built-in loop and the GA strategy are bit-identical; going
        // through `optimize` keeps the default path byte-for-byte what it
        // was before strategies existed.
        "ga" => tuner
            .optimize(rr)
            .map_err(|e| ArgError(format!("search failed: {e}")))?,
        other => {
            let mut strategy = build_strategy(&tuner, other)?;
            tuner
                .optimize_with_strategy(rr, strategy.as_mut())
                .map_err(|e| ArgError(format!("search failed: {e}")))?
        }
    };
    eprintln!("search strategy     : {strategy_name}");
    let default_tput = tuner.context().measure(rr, &EngineConfig::default());
    let tuned_tput = tuner.context().measure(rr, &best.config);
    println!("workload read ratio : {rr:.2}");
    println!("surrogate evals     : {}", best.surrogate_evaluations);
    println!("predicted ops/s     : {:.0}", best.predicted_throughput);
    println!(
        "measured  ops/s     : {tuned_tput:.0} (default {default_tput:.0}, {:+.1}%)",
        (tuned_tput / default_tput - 1.0) * 100.0
    );
    println!(
        "compaction_method            = {:?}",
        best.config.compaction_method
    );
    println!(
        "concurrent_writes            = {}",
        best.config.concurrent_writes
    );
    println!(
        "file_cache_size_in_mb        = {}",
        best.config.file_cache_size_mb
    );
    println!(
        "memtable_cleanup_threshold   = {:.2}",
        best.config.memtable_cleanup_threshold
    );
    println!(
        "concurrent_compactors        = {}",
        best.config.concurrent_compactors
    );
    Ok(())
}

/// Builds a non-GA search strategy over the fitted tuner's space with a
/// budget matching the built-in GA (`population * (generations + 1) + 1`
/// evaluations), so `--strategy` swaps the algorithm, not the effort.
fn build_strategy(
    tuner: &RafikiTuner,
    name: &str,
) -> Result<Box<dyn rafiki_search::SearchStrategy>, ArgError> {
    let space = tuner
        .space()
        .ok_or_else(|| ArgError("tuner not fitted".to_string()))?
        .to_ga_space();
    let ga = TunerConfig::fast().ga;
    let budget = ga.population * (ga.generations + 1) + 1;
    Ok(match name {
        "bestconfig" => Box::new(rafiki_search::BestConfigSearch::new(
            space,
            rafiki_search::BestConfigConfig {
                samples_per_round: ga.population,
                rounds: budget / ga.population,
                seed: ga.seed,
                ..rafiki_search::BestConfigConfig::default()
            },
        )),
        "latent" => {
            let design = 32;
            Box::new(rafiki_search::LatentSearch::new(
                space,
                rafiki_search::LatentConfig {
                    design_samples: design,
                    latent_dim: 4,
                    ga: rafiki_ga::GaConfig {
                        generations: ((budget - design - 1) / ga.population).saturating_sub(1),
                        ..ga
                    },
                    seed: ga.seed,
                    ..rafiki_search::LatentConfig::default()
                },
            ))
        }
        "random" => Box::new(rafiki_search::RandomSearch::new(
            space,
            budget,
            ga.population,
            ga.seed,
        )),
        other => {
            return Err(ArgError(format!(
                "--strategy {other}: use ga|bestconfig|latent|random"
            )))
        }
    })
}

fn cmd_bench(args: &Args) -> Result<(), ArgError> {
    let rr: f64 = args.num_or("rr", 0.5)?;
    let mut cfg = EngineConfig::default();
    cfg.compaction_method = match args.get_or("cm", "size-tiered") {
        "size-tiered" | "stcs" => CompactionMethod::SizeTiered,
        "leveled" | "lcs" => CompactionMethod::Leveled,
        other => return Err(ArgError(format!("--cm {other}: use size-tiered|leveled"))),
    };
    cfg.concurrent_writes = args.num_or("cw", cfg.concurrent_writes)?;
    cfg.file_cache_size_mb = args.num_or("fcz", cfg.file_cache_size_mb)?;
    cfg.memtable_cleanup_threshold = args.num_or("mt", cfg.memtable_cleanup_threshold)?;
    cfg.concurrent_compactors = args.num_or("cc", cfg.concurrent_compactors)?;

    let preload = 60_000;
    let mut engine = Engine::new(cfg, ServerSpec::default());
    engine.preload(preload, 1_000);
    let spec = WorkloadSpec {
        initial_keys: preload,
        ..WorkloadSpec::with_read_ratio(rr)
    };
    let mut workload = WorkloadGenerator::new(spec, args.num_or("seed", 0u64)?);
    let bench = BenchmarkSpec {
        duration_secs: args.num_or("seconds", 4.0)?,
        warmup_secs: 1.0,
        clients: args.num_or("clients", 64usize)?,
        sample_window_secs: 1.0,
    };
    let r = run_benchmark(&mut engine, &mut workload, &bench);
    println!("throughput : {:.0} ops/s", r.avg_ops_per_sec);
    println!("mean lat   : {:.3} ms", r.mean_latency_ms);
    println!("p99 lat    : {:.3} ms", r.p99_latency_ms);
    println!("read ratio : {:.2}", r.observed_read_ratio());
    println!("flushes    : {}", engine.metrics().flushes);
    println!("compactions: {}", engine.metrics().compactions);
    println!("sstables   : {}", engine.table_count());
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    let model = MgRastModel {
        days: args.num_or("days", 4u32)?,
        seed: args.num_or("seed", 0u64)?,
        ..MgRastModel::default()
    };
    let trace = model.generate();
    // The format `replay --trace` parses (WorkloadTrace::to_csv).
    print!("{}", trace.to_csv());
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), ArgError> {
    let path = args.get_or("trace", "");
    if path.is_empty() {
        return Err(ArgError("replay needs --trace FILE".to_string()));
    }
    let csv =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let trace = rafiki_workload::WorkloadTrace::from_csv(&csv)
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let window = args.num_or("window", 0usize)?;
    let Some(w) = trace.windows.get(window) else {
        return Err(ArgError(format!(
            "--window {window} out of range (trace has {} windows)",
            trace.windows.len()
        )));
    };
    println!(
        "replaying window {} (RR {:.2}, regime {:?}) of {}",
        w.index,
        w.read_ratio,
        Regime::classify(w.read_ratio),
        path
    );
    let preload = 60_000;
    let mut engine = Engine::new(EngineConfig::default(), ServerSpec::default());
    engine.preload(preload, 1_000);
    let spec = WorkloadSpec {
        initial_keys: preload,
        krd_mean: trace.krd_mean,
        ..WorkloadSpec::with_read_ratio(w.read_ratio)
    };
    let mut workload = WorkloadGenerator::new(spec, args.num_or("seed", 0u64)?);
    let bench = BenchmarkSpec {
        duration_secs: args.num_or("seconds", 3.0)?,
        warmup_secs: 1.0,
        clients: 64,
        sample_window_secs: 1.0,
    };
    let r = run_benchmark(&mut engine, &mut workload, &bench);
    println!(
        "window {}: {:.0} ops/s (observed RR {:.2}, p99 {:.3} ms)",
        w.index,
        r.avg_ops_per_sec,
        r.observed_read_ratio(),
        r.p99_latency_ms
    );
    Ok(())
}

/// Installs the process-global tracing subscriber from `--trace` /
/// `--log-level`, returning whether anything was installed.
///
/// `--trace FILE` captures *everything* (trace level) as JSONL;
/// `--log-level` prints human-readable lines to stderr at that severity
/// and up. With both, the stderr branch is level-filtered while the
/// file still gets the full stream.
fn init_observability(args: &Args) -> Result<bool, ArgError> {
    use rafiki_obs::{
        set_subscriber, FilterSink, HumanSink, JsonlSink, Level, Subscriber, TeeSink,
    };
    use std::sync::Arc;

    let trace_path = args.get_or("trace", "");
    let log_level = args.get_or("log-level", "");
    let console: Option<Level> = match log_level {
        "" => None,
        s => Some(
            s.parse()
                .map_err(|e: String| ArgError(format!("--log-level {s}: {e}")))?,
        ),
    };
    let mut sinks: Vec<Arc<dyn Subscriber>> = Vec::new();
    if !trace_path.is_empty() {
        let sink = JsonlSink::create(trace_path)
            .map_err(|e| ArgError(format!("cannot create {trace_path}: {e}")))?;
        sinks.push(Arc::new(sink));
    }
    if let Some(level) = console {
        let human: Arc<dyn Subscriber> = Arc::new(HumanSink::new(std::io::stderr()));
        sinks.push(if trace_path.is_empty() {
            human
        } else {
            // The file captures everything; only stderr is filtered.
            Arc::new(FilterSink::new(level, human))
        });
    }
    // The file wants every event; otherwise produce only what stderr shows.
    let max = if trace_path.is_empty() {
        match console {
            Some(level) => level,
            None => return Ok(false),
        }
    } else {
        Level::Trace
    };
    let subscriber: Arc<dyn Subscriber> = match sinks.len() {
        1 => sinks.pop().expect("one sink"),
        _ => Arc::new(TeeSink::new(sinks)),
    };
    set_subscriber(subscriber, max);
    Ok(true)
}

fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    let addr = args.get_or("addr", "127.0.0.1:7878").to_string();
    init_observability(args)?;
    let ctx = context(args.has("quick"));
    let mut tuner = RafikiTuner::new(ctx, TunerConfig::fast());
    eprintln!("fitting the tuner (data collection + surrogate training)…");
    tuner
        .fit()
        .map_err(|e| ArgError(format!("tuner fit failed: {e}")))?;
    let cfg = ServeConfig {
        window_ops: args.num_or("window", 1_000usize)?,
        controller: ControllerConfig {
            proactive: args.has("proactive"),
            ..ControllerConfig::default()
        },
        shards: args.num_or("shards", 1usize)?.max(1),
        lockstep: args.has("lockstep"),
        ..ServeConfig::default()
    };
    let server = Server::bind(addr.as_str(), tuner, cfg)
        .map_err(|e| ArgError(format!("bind {addr}: {e}")))?;
    eprintln!(
        "serving on {} — {} shard{} ({}), one window per {} ops{}; send {{\"type\":\"shutdown\"}} to stop",
        server.local_addr().map_err(|e| ArgError(e.to_string()))?,
        cfg.shards,
        if cfg.shards == 1 { "" } else { "s" },
        if cfg.lockstep {
            "lockstep tuning"
        } else {
            "independent tuning"
        },
        cfg.window_ops,
        if cfg.controller.proactive {
            ", proactive"
        } else {
            ""
        }
    );
    let report = server.run().map_err(|e| ArgError(format!("serve: {e}")))?;
    println!(
        "served {} operations over {} windows ({} reoptimizations, {} reconfigurations)",
        report.operations, report.windows_closed, report.reoptimizations, report.reconfigurations
    );
    Ok(())
}

fn cmd_client(args: &Args) -> Result<(), ArgError> {
    let addr = args.get_or("addr", "127.0.0.1:7878");
    let mut client = Client::connect(addr).map_err(|e| ArgError(format!("connect {addr}: {e}")))?;
    if args.has("shutdown") {
        client
            .shutdown()
            .map_err(|e| ArgError(format!("shutdown: {e}")))?;
        println!("daemon at {addr} acknowledged shutdown");
        return Ok(());
    }
    if args.has("metrics") {
        let report = client
            .metrics()
            .map_err(|e| ArgError(format!("metrics: {e}")))?;
        print!("{}", report.prometheus);
        return Ok(());
    }
    if !args.has("stats") {
        let rr: f64 = args.num_or("rr", 0.9)?;
        let ops: usize = args.num_or("ops", 2_000usize)?;
        let batch: usize = args.num_or("batch", rafiki_serve::client::DRIVE_BATCH)?;
        let inflight: usize = args.num_or("inflight", 1usize)?;
        let spec = WorkloadSpec {
            initial_keys: 20_000,
            ..WorkloadSpec::with_read_ratio(rr)
        };
        let mut workload = WorkloadGenerator::new(spec, args.num_or("seed", 0u64)?);
        let h = client
            .drive_pipelined(&mut workload, ops, batch, inflight)
            .map_err(|e| ArgError(format!("stream failed: {e}")))?;
        println!(
            "client     : {} ops, mean {:.0} us, p50 {} us, p99 {} us, max {} us",
            h.total(),
            h.mean().unwrap_or(0.0),
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max().unwrap_or(0)
        );
    }
    let stats = client
        .stats()
        .map_err(|e| ArgError(format!("stats: {e}")))?;
    println!(
        "daemon     : {} ops, RR {:.2}, KRD {}, {} windows",
        stats.operations,
        stats.read_ratio,
        stats
            .krd_mean
            .map_or("n/a".to_string(), |m| format!("{m:.0}")),
        stats.windows_closed
    );
    println!(
        "latency    : p50 {} us, p95 {} us, p99 {} us, max {} us",
        stats.latency.p50_us, stats.latency.p95_us, stats.latency.p99_us, stats.latency.max_us
    );
    if stats.shards.len() > 1 {
        for shard in &stats.shards {
            println!(
                "  shard {}  : {} ops, RR {:.2}, {} windows, {} reconfigurations, p99 {} us",
                shard.shard,
                shard.operations,
                shard.read_ratio,
                shard.windows_closed,
                shard.reconfigurations,
                shard.latency.p99_us
            );
        }
    }
    let report = client
        .config()
        .map_err(|e| ArgError(format!("config: {e}")))?;
    println!(
        "tuning     : {} reoptimizations, {} reconfigurations, active {} (cw={}, fcz={} MB)",
        stats.reoptimizations,
        stats.reconfigurations,
        report.active.compaction_method,
        report.active.concurrent_writes,
        report.active.file_cache_size_mb
    );
    Ok(())
}

fn cmd_ycsb(args: &Args) -> Result<(), ArgError> {
    let preset = match args.get_or("preset", "A") {
        "A" | "a" => YcsbPreset::A,
        "B" | "b" => YcsbPreset::B,
        "C" | "c" => YcsbPreset::C,
        "D" | "d" => YcsbPreset::D,
        "F" | "f" => YcsbPreset::F,
        other => return Err(ArgError(format!("--preset {other}: use A|B|C|D|F"))),
    };
    let preload = 60_000;
    let mut engine = Engine::new(EngineConfig::default(), ServerSpec::default());
    engine.preload(preload, 1_000);
    let mut workload = WorkloadGenerator::new(preset.spec(preload), 1);
    let bench = BenchmarkSpec {
        duration_secs: args.num_or("seconds", 3.0)?,
        warmup_secs: 1.0,
        clients: 64,
        sample_window_secs: 1.0,
    };
    let r = run_benchmark(&mut engine, &mut workload, &bench);
    println!(
        "{preset}: {:.0} ops/s (RR {:.2}, mean {:.3} ms, p99 {:.3} ms)",
        r.avg_ops_per_sec,
        r.observed_read_ratio(),
        r.mean_latency_ms,
        r.p99_latency_ms
    );
    Ok(())
}
