//! End-to-end tests of the `rafiki-tune` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rafiki-tune"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("rafiki-tune"));
    assert!(stdout.contains("screen"));
    assert!(stdout.contains("replay"));
}

#[test]
fn help_mentions_cluster_flags() {
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("--shards"), "serve usage lost --shards");
    assert!(stdout.contains("--lockstep"), "serve usage lost --lockstep");
    assert!(
        stdout.contains("--inflight"),
        "client usage lost --inflight"
    );
}

#[test]
fn no_command_prints_usage() {
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_flag_fails_with_message() {
    let (ok, _, stderr) = run(&["bench", "--cw"]);
    assert!(!ok);
    assert!(stderr.contains("--cw needs a value"));
}

#[test]
fn trace_emits_parseable_csv() {
    let (ok, stdout, _) = run(&["trace", "--days", "1", "--seed", "3"]);
    assert!(ok);
    let trace = rafiki_workload::WorkloadTrace::from_csv(&stdout).expect("parseable trace");
    assert_eq!(trace.windows.len(), 96);
}

#[test]
fn bench_reports_throughput() {
    let (ok, stdout, _) = run(&[
        "bench",
        "--rr",
        "0.5",
        "--cm",
        "leveled",
        "--seconds",
        "1",
        "--clients",
        "16",
    ]);
    assert!(ok, "bench failed: {stdout}");
    assert!(stdout.contains("throughput"), "{stdout}");
    assert!(stdout.contains("sstables"), "{stdout}");
}

#[test]
fn bench_rejects_bad_compaction_method() {
    let (ok, _, stderr) = run(&["bench", "--cm", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("--cm quantum"));
}

#[test]
fn trace_replay_roundtrip() {
    let (ok, csv, _) = run(&["trace", "--days", "1", "--seed", "9"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("rafiki_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.csv");
    std::fs::write(&path, &csv).expect("write trace");

    let (ok, stdout, stderr) = run(&[
        "replay",
        "--trace",
        path.to_str().expect("utf8 path"),
        "--window",
        "5",
        "--seconds",
        "1",
    ]);
    assert!(ok, "replay failed: {stderr}");
    assert!(stdout.contains("window 5"), "{stdout}");
    assert!(stdout.contains("ops/s"), "{stdout}");
}

#[test]
fn replay_rejects_missing_and_out_of_range() {
    let (ok, _, stderr) = run(&["replay"]);
    assert!(!ok);
    assert!(stderr.contains("--trace"));

    let (ok, csv, _) = run(&["trace", "--days", "1"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("rafiki_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace2.csv");
    std::fs::write(&path, &csv).expect("write trace");
    let (ok, _, stderr) = run(&[
        "replay",
        "--trace",
        path.to_str().expect("utf8 path"),
        "--window",
        "100000",
    ]);
    assert!(!ok);
    assert!(stderr.contains("out of range"));
}

#[test]
fn ycsb_preset_runs() {
    let (ok, stdout, _) = run(&["ycsb", "--preset", "C", "--seconds", "1"]);
    assert!(ok);
    assert!(stdout.contains("YCSB-C"), "{stdout}");
}
