//! Pure random search — the floor baseline.
//!
//! Uniform seeded sampling of the space, emitted in fixed-size batches
//! until a fixed evaluation budget is spent. Any strategy that cannot
//! beat this on equal budget is not searching, it is decorating.

use crate::{SearchBest, SearchStrategy};
use rafiki_ga::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random search over a [`SearchSpace`] with a fixed budget.
pub struct RandomSearch {
    space: SearchSpace,
    rng: StdRng,
    budget: usize,
    batch_size: usize,
    pending: Vec<Vec<f64>>,
    evaluations: usize,
    best: Option<SearchBest>,
}

impl RandomSearch {
    /// Creates the strategy: `budget` total evaluations consumed in
    /// batches of `batch_size` (the last batch is truncated to fit).
    ///
    /// # Panics
    ///
    /// Panics when `budget` or `batch_size` is zero.
    pub fn new(space: SearchSpace, budget: usize, batch_size: usize, seed: u64) -> Self {
        assert!(budget > 0, "budget must be positive");
        assert!(batch_size > 0, "batch_size must be positive");
        let mut s = RandomSearch {
            space,
            rng: StdRng::seed_from_u64(seed),
            budget,
            batch_size,
            pending: Vec::new(),
            evaluations: 0,
            best: None,
        };
        s.refill();
        s
    }

    fn refill(&mut self) {
        let remaining = self.budget - self.evaluations;
        let n = remaining.min(self.batch_size);
        self.pending = (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self) -> Vec<Vec<f64>> {
        self.pending.clone()
    }

    fn observe(&mut self, raw: &[f64]) {
        assert!(
            !self.is_done(),
            "observe called after random search completed"
        );
        assert_eq!(
            raw.len(),
            self.pending.len(),
            "batch evaluator length mismatch"
        );
        self.evaluations += raw.len();
        for (genome, &fit) in self.pending.iter().zip(raw) {
            SearchBest::improve(&mut self.best, genome, fit);
        }
        if self.evaluations < self.budget {
            self.refill();
        } else {
            self.pending.clear();
        }
    }

    fn is_done(&self) -> bool {
        self.evaluations >= self.budget
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn best(&self) -> Option<SearchBest> {
        self.best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_strategy;
    use crate::testutil::{batch_objective, wide_space};

    #[test]
    fn spends_exactly_its_budget() {
        let mut s = RandomSearch::new(wide_space(), 37, 10, 5);
        let out = run_strategy(&mut s, batch_objective);
        assert_eq!(out.evaluations, 37);
        assert_eq!(out.batches, 4); // 10 + 10 + 10 + 7
    }

    #[test]
    fn every_proposal_is_feasible() {
        let space = wide_space();
        let mut s = RandomSearch::new(space.clone(), 64, 16, 9);
        while !s.is_done() {
            let batch = s.propose();
            for g in &batch {
                assert!(space.is_feasible(g));
            }
            let raw = batch_objective(&batch);
            s.observe(&raw);
        }
    }

    #[test]
    fn best_tracks_the_maximum_observed() {
        let mut s = RandomSearch::new(wide_space(), 48, 12, 1);
        let mut seen = f64::NEG_INFINITY;
        while !s.is_done() {
            let batch = s.propose();
            let raw = batch_objective(&batch);
            seen = raw.iter().cloned().fold(seen, f64::max);
            s.observe(&raw);
        }
        assert_eq!(s.best().expect("has best").fitness, seen);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn observe_length_mismatch_panics() {
        let mut s = RandomSearch::new(wide_space(), 8, 4, 0);
        let _ = s.propose();
        s.observe(&[1.0]);
    }
}
