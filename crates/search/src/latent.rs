//! LatentTune-style latent-space search.
//!
//! High-dimensional configuration spaces are mostly empty: the engine's
//! knobs are correlated (cache sizes track pool sizes, compaction
//! thresholds track method), so the useful region is a low-dimensional
//! manifold. This strategy learns that manifold and searches it:
//!
//! 1. **Design phase** — draw a seeded uniform design over the full
//!    space and evaluate it (those evaluations count against the
//!    budget and seed the incumbent).
//! 2. **Fit** — min-max normalize the design genomes to `[0, 1]^d` and
//!    train a [`rafiki_neural::Autoencoder`] (`d → k` tanh bottleneck)
//!    on them.
//! 3. **Latent phase** — run the [`rafiki_ga::GaStepper`] over the box
//!    `[-1, 1]^k` (sound because the tanh encoder maps every real
//!    config into it). Each latent proposal is decoded, clamped to
//!    `[0, 1]^d`, denormalized, and repaired onto the constraint set
//!    before the evaluator sees it — callers only ever score feasible
//!    genomes.
//!
//! Deterministic end to end: design sampling, autoencoder init, and the
//! latent GA all run on seeded RNGs.

use crate::{SearchBest, SearchStrategy};
use rafiki_ga::{GaConfig, GaStepper, GeneSpec, SearchSpace};
use rafiki_neural::{Autoencoder, AutoencoderConfig, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters for [`LatentSearch`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatentConfig {
    /// Uniform design samples evaluated before fitting the autoencoder.
    pub design_samples: usize,
    /// Latent dimension `k` (clamped to the space dimension).
    pub latent_dim: usize,
    /// Autoencoder training epochs.
    pub autoencoder_epochs: usize,
    /// GA configuration for the latent-space search (its `seed` drives
    /// the latent GA; population/generations set the latent budget).
    pub ga: GaConfig,
    /// Seed for design sampling and autoencoder initialization.
    pub seed: u64,
}

impl Default for LatentConfig {
    fn default() -> Self {
        LatentConfig {
            design_samples: 64,
            latent_dim: 4,
            autoencoder_epochs: 200,
            ga: GaConfig::default(),
            seed: 0,
        }
    }
}

enum Phase {
    /// Waiting on scores for the uniform design.
    Design,
    /// Driving the latent GA.
    Latent,
    Done,
}

/// Autoencoder-compressed search over a [`SearchSpace`].
pub struct LatentSearch {
    space: SearchSpace,
    cfg: LatentConfig,
    lo: Vec<f64>,
    hi: Vec<f64>,
    phase: Phase,
    /// Decoded (feasible) genomes awaiting scores.
    pending: Vec<Vec<f64>>,
    ae: Option<Autoencoder>,
    stepper: Option<GaStepper>,
    evaluations: usize,
    best: Option<SearchBest>,
}

impl LatentSearch {
    /// Creates the strategy and draws the design batch.
    ///
    /// # Panics
    ///
    /// Panics when `design_samples < 2` or `latent_dim == 0`, or on an
    /// invalid latent [`GaConfig`].
    pub fn new(space: SearchSpace, cfg: LatentConfig) -> Self {
        assert!(cfg.design_samples >= 2, "design_samples must be at least 2");
        assert!(cfg.latent_dim >= 1, "latent_dim must be positive");
        let lo: Vec<f64> = space.genes().iter().map(|g| g.lo()).collect();
        let hi: Vec<f64> = space.genes().iter().map(|g| g.hi()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let design: Vec<Vec<f64>> = (0..cfg.design_samples)
            .map(|_| space.sample(&mut rng))
            .collect();
        LatentSearch {
            space,
            cfg,
            lo,
            hi,
            phase: Phase::Design,
            pending: design,
            ae: None,
            stepper: None,
            evaluations: 0,
            best: None,
        }
    }

    /// Latent dimension actually in use (config clamped to the space).
    pub fn latent_dim(&self) -> usize {
        self.cfg.latent_dim.min(self.space.len())
    }

    /// The trained autoencoder, once the design phase has completed.
    pub fn autoencoder(&self) -> Option<&Autoencoder> {
        self.ae.as_ref()
    }

    fn normalize(&self, genome: &[f64]) -> Vec<f64> {
        genome
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let w = self.hi[j] - self.lo[j];
                if w > 0.0 {
                    (v - self.lo[j]) / w
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Decodes one latent point into a feasible genome: clamp the latent
    /// coordinates to the search box, decode, clamp the reconstruction
    /// to `[0, 1]^d`, denormalize, repair.
    fn decode_genome(&self, z: &[f64]) -> Vec<f64> {
        let ae = self.ae.as_ref().expect("autoencoder trained");
        let zc: Vec<f64> = z.iter().map(|&v| v.clamp(-1.0, 1.0)).collect();
        let xn = ae.decode(&zc);
        let raw: Vec<f64> = xn
            .iter()
            .enumerate()
            .map(|(j, &t)| self.lo[j] + t.clamp(0.0, 1.0) * (self.hi[j] - self.lo[j]))
            .collect();
        self.space.repair(&raw)
    }

    fn decode_batch(&self, latent: &[Vec<f64>]) -> Vec<Vec<f64>> {
        latent.iter().map(|z| self.decode_genome(z)).collect()
    }

    /// Trains the autoencoder on the (normalized) design and boots the
    /// latent GA.
    fn fit_and_start_latent(&mut self, design: &[Vec<f64>]) {
        let k = self.latent_dim();
        let rows: Vec<Vec<f64>> = design.iter().map(|g| self.normalize(g)).collect();
        let ae = Autoencoder::train(
            &Matrix::from_rows(&rows),
            &AutoencoderConfig {
                latent_dim: k,
                epochs: self.cfg.autoencoder_epochs,
                seed: self.cfg.seed,
                ..AutoencoderConfig::default()
            },
        );
        self.ae = Some(ae);
        let latent_space = SearchSpace::new(vec![
            GeneSpec::Real {
                min: -1.0,
                max: 1.0,
            };
            k
        ]);
        let stepper = GaStepper::new(latent_space, self.cfg.ga);
        self.pending = self.decode_batch(&stepper.propose());
        self.stepper = Some(stepper);
        self.phase = Phase::Latent;
    }
}

impl SearchStrategy for LatentSearch {
    fn name(&self) -> &'static str {
        "latent"
    }

    fn propose(&mut self) -> Vec<Vec<f64>> {
        self.pending.clone()
    }

    fn observe(&mut self, raw: &[f64]) {
        assert!(
            !matches!(self.phase, Phase::Done),
            "observe called after latent search completed"
        );
        assert_eq!(
            raw.len(),
            self.pending.len(),
            "batch evaluator length mismatch"
        );
        self.evaluations += raw.len();
        for (genome, &fit) in self.pending.iter().zip(raw) {
            SearchBest::improve(&mut self.best, genome, fit);
        }
        match self.phase {
            Phase::Design => {
                let design = std::mem::take(&mut self.pending);
                self.fit_and_start_latent(&design);
            }
            Phase::Latent => {
                let stepper = self.stepper.as_mut().expect("latent GA running");
                stepper.observe(raw);
                if stepper.is_done() {
                    self.pending.clear();
                    self.phase = Phase::Done;
                } else {
                    let next = stepper.propose();
                    self.pending = self.decode_batch(&next);
                }
            }
            Phase::Done => unreachable!("guarded above"),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn best(&self) -> Option<SearchBest> {
        self.best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_strategy;
    use crate::testutil::{batch_objective, wide_space};
    use proptest::prelude::*;

    fn cfg(seed: u64) -> LatentConfig {
        LatentConfig {
            design_samples: 24,
            latent_dim: 3,
            autoencoder_epochs: 40,
            ga: GaConfig {
                population: 10,
                generations: 5,
                seed,
                ..GaConfig::default()
            },
            seed,
        }
    }

    #[test]
    fn budget_is_design_plus_latent_ga() {
        let mut s = LatentSearch::new(wide_space(), cfg(5));
        let out = run_strategy(&mut s, batch_objective);
        // design + GA's pop*(gens+1) + final confirmation pass.
        assert_eq!(out.evaluations, 24 + 10 * (5 + 1) + 1);
    }

    #[test]
    fn every_proposal_is_feasible_in_both_phases() {
        let space = wide_space();
        let mut s = LatentSearch::new(space.clone(), cfg(2));
        while !s.is_done() {
            let batch = s.propose();
            for g in &batch {
                assert!(space.is_feasible(g), "infeasible proposal {g:?}");
            }
            let raw = batch_objective(&batch);
            s.observe(&raw);
        }
    }

    #[test]
    fn latent_dim_clamps_to_space_dimension() {
        let space = SearchSpace::new(vec![
            GeneSpec::Real { min: 0.0, max: 1.0 },
            GeneSpec::Real { min: 0.0, max: 2.0 },
        ]);
        let s = LatentSearch::new(
            space,
            LatentConfig {
                latent_dim: 9,
                ..cfg(0)
            },
        );
        assert_eq!(s.latent_dim(), 2);
    }

    #[test]
    fn decoded_points_round_trip_inside_bounds() {
        // Train on a real design, then decode a deterministic sweep of
        // latent points (corners, axes, center) — every reconstruction
        // must land inside the typed bounds and on the constraint set.
        let space = wide_space();
        let mut s = LatentSearch::new(space.clone(), cfg(7));
        let raw = batch_objective(&s.propose());
        s.observe(&raw); // trains the autoencoder
        let k = s.latent_dim();
        let mut probes: Vec<Vec<f64>> = vec![vec![0.0; k]];
        for j in 0..k {
            for v in [-1.0, -0.5, 0.5, 1.0] {
                let mut z = vec![0.0; k];
                z[j] = v;
                probes.push(z);
            }
        }
        probes.push(vec![1.0; k]);
        probes.push(vec![-1.0; k]);
        for z in &probes {
            let g = s.decode_genome(z);
            assert!(space.is_feasible(&g), "decoded {z:?} -> infeasible {g:?}");
            for (j, gene) in space.genes().iter().enumerate() {
                assert!(
                    g[j] >= gene.lo() && g[j] <= gene.hi(),
                    "gene {j} out of bounds: {}",
                    g[j]
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn decode_is_feasible_for_random_seeds_and_latents(
            seed in 0u64..1_000,
            zs in prop::collection::vec(-1.5f64..1.5, 3..4),
        ) {
            // Even out-of-box latent points (mutation overshoot) decode
            // to feasible genomes, for arbitrary training seeds.
            let space = wide_space();
            let mut s = LatentSearch::new(space.clone(), cfg(seed));
            let raw = batch_objective(&s.propose());
            s.observe(&raw);
            let g = s.decode_genome(&zs);
            prop_assert!(space.is_feasible(&g));
        }
    }

    #[test]
    fn incumbent_never_regresses_from_design_phase() {
        let mut s = LatentSearch::new(wide_space(), cfg(11));
        let raw = batch_objective(&s.propose());
        let design_best = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        s.observe(&raw);
        let out = run_strategy(&mut s, batch_objective);
        assert!(out.best_fitness >= design_best);
    }
}
