//! BestConfig-style divide-and-diverge sampling.
//!
//! Each round draws a Latin-hypercube sample inside the current bounds
//! box. When the round improves on the incumbent, the box *divides*:
//! bounds shrink around the new incumbent so the next round samples the
//! promising neighbourhood at higher resolution. When a round fails to
//! improve, the box *diverges*: bounds reset to the full space so the
//! search escapes the local plateau instead of drilling into it. The
//! recursion depth is implicit in how many consecutive improving rounds
//! occur.
//!
//! Deterministic: the RNG consumption schedule per round is fixed (one
//! permutation and one jitter draw per gene per sample) regardless of
//! observations, so two equally seeded instances fed equal scores stay
//! in lockstep.

use crate::{SearchBest, SearchStrategy};
use rafiki_ga::SearchSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`BestConfigSearch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestConfigConfig {
    /// Latin-hypercube samples per round (≥ 2).
    pub samples_per_round: usize,
    /// Number of rounds; total budget = `samples_per_round * rounds`.
    pub rounds: usize,
    /// Per-gene bound-width multiplier applied on improvement (in (0,1)).
    pub shrink: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BestConfigConfig {
    fn default() -> Self {
        BestConfigConfig {
            samples_per_round: 20,
            rounds: 8,
            shrink: 0.5,
            seed: 0,
        }
    }
}

/// Divide-and-diverge Latin-hypercube search over a [`SearchSpace`].
pub struct BestConfigSearch {
    space: SearchSpace,
    cfg: BestConfigConfig,
    rng: StdRng,
    /// Current per-gene sampling bounds (start at the full space).
    lo: Vec<f64>,
    hi: Vec<f64>,
    round: usize,
    pending: Vec<Vec<f64>>,
    evaluations: usize,
    best: Option<SearchBest>,
}

impl BestConfigSearch {
    /// Creates the strategy and draws the first round.
    ///
    /// # Panics
    ///
    /// Panics when `samples_per_round < 2`, `rounds == 0`, or `shrink`
    /// is outside `(0, 1)`.
    pub fn new(space: SearchSpace, cfg: BestConfigConfig) -> Self {
        assert!(
            cfg.samples_per_round >= 2,
            "samples_per_round must be at least 2"
        );
        assert!(cfg.rounds > 0, "rounds must be positive");
        assert!(
            cfg.shrink > 0.0 && cfg.shrink < 1.0,
            "shrink must be in (0, 1)"
        );
        let lo: Vec<f64> = space.genes().iter().map(|g| g.lo()).collect();
        let hi: Vec<f64> = space.genes().iter().map(|g| g.hi()).collect();
        let mut s = BestConfigSearch {
            space,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            lo,
            hi,
            round: 0,
            pending: Vec::new(),
            evaluations: 0,
            best: None,
        };
        s.pending = s.lhs_round();
        s
    }

    /// One Latin-hypercube sample of `samples_per_round` genomes inside
    /// the current bounds: each gene's range is cut into `n` strata, a
    /// seeded permutation assigns one stratum per genome, and a jitter
    /// draw places the value inside its stratum. Every genome is then
    /// repaired onto the constraint set (discrete rounding, clamping).
    fn lhs_round(&mut self) -> Vec<Vec<f64>> {
        let n = self.cfg.samples_per_round;
        let d = self.space.len();
        let mut genomes = vec![vec![0.0; d]; n];
        for j in 0..d {
            // Fisher-Yates permutation of strata indices.
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let k = self.rng.gen_range(0..=i);
                perm.swap(i, k);
            }
            let width = self.hi[j] - self.lo[j];
            for (i, genome) in genomes.iter_mut().enumerate() {
                let jitter: f64 = self.rng.gen();
                let t = (perm[i] as f64 + jitter) / n as f64;
                genome[j] = self.lo[j] + t * width;
            }
        }
        genomes.iter().map(|g| self.space.repair(g)).collect()
    }

    /// Shrinks the bounds box around `center`, clipped to the full
    /// space. A box may collapse to (near) a point on a gene; the next
    /// divergence resets it.
    fn divide_around(&mut self, center: &[f64]) {
        for (j, gene) in self.space.genes().iter().enumerate() {
            let half = (self.hi[j] - self.lo[j]) * self.cfg.shrink * 0.5;
            self.lo[j] = (center[j] - half).max(gene.lo());
            self.hi[j] = (center[j] + half).min(gene.hi());
        }
    }

    /// Resets the bounds box to the full space.
    fn diverge(&mut self) {
        for (j, gene) in self.space.genes().iter().enumerate() {
            self.lo[j] = gene.lo();
            self.hi[j] = gene.hi();
        }
    }

    /// Current per-gene bounds (testing/introspection).
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lo, &self.hi)
    }
}

impl SearchStrategy for BestConfigSearch {
    fn name(&self) -> &'static str {
        "bestconfig"
    }

    fn propose(&mut self) -> Vec<Vec<f64>> {
        self.pending.clone()
    }

    fn observe(&mut self, raw: &[f64]) {
        assert!(
            !self.is_done(),
            "observe called after bestconfig search completed"
        );
        assert_eq!(
            raw.len(),
            self.pending.len(),
            "batch evaluator length mismatch"
        );
        self.evaluations += raw.len();
        let (mut bi, mut bf) = (0usize, f64::NEG_INFINITY);
        for (i, &f) in raw.iter().enumerate() {
            if f > bf {
                (bi, bf) = (i, f);
            }
        }
        let improved = bf.is_finite() && self.best.as_ref().is_none_or(|b| bf > b.fitness);
        if improved {
            let incumbent = self.pending[bi].clone();
            SearchBest::improve(&mut self.best, &incumbent, bf);
            self.divide_around(&incumbent);
        } else {
            self.diverge();
        }
        self.round += 1;
        if self.round < self.cfg.rounds {
            self.pending = self.lhs_round();
        } else {
            self.pending.clear();
        }
    }

    fn is_done(&self) -> bool {
        self.round >= self.cfg.rounds
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn best(&self) -> Option<SearchBest> {
        self.best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_strategy;
    use crate::testutil::{batch_objective, objective, wide_space};

    fn cfg(seed: u64) -> BestConfigConfig {
        BestConfigConfig {
            samples_per_round: 16,
            rounds: 8,
            seed,
            ..BestConfigConfig::default()
        }
    }

    #[test]
    fn budget_is_rounds_times_samples() {
        let mut s = BestConfigSearch::new(wide_space(), cfg(4));
        let out = run_strategy(&mut s, batch_objective);
        assert_eq!(out.evaluations, 16 * 8);
        assert_eq!(out.batches, 8);
    }

    #[test]
    fn lhs_rounds_are_feasible_and_stratified() {
        let space = wide_space();
        let mut s = BestConfigSearch::new(space.clone(), cfg(2));
        let batch = s.propose();
        assert_eq!(batch.len(), 16);
        for g in &batch {
            assert!(space.is_feasible(g));
        }
        // Stratification: the continuous gene (index 5, range 0.10..0.90)
        // gets one sample per stratum, so min and max land in the outer
        // quarters of the range — uniform sampling cannot guarantee that.
        let vals: Vec<f64> = batch.iter().map(|g| g[5]).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.10 + 0.8 / 16.0 * 2.0, "min stratum missed: {lo}");
        assert!(hi > 0.90 - 0.8 / 16.0 * 2.0, "max stratum missed: {hi}");
    }

    #[test]
    fn improvement_divides_bounds_around_incumbent() {
        let mut s = BestConfigSearch::new(wide_space(), cfg(6));
        let batch = s.propose();
        let raw = batch_objective(&batch);
        s.observe(&raw);
        let best = s.best().expect("first round always improves");
        let (lo, hi) = s.bounds();
        let full = wide_space();
        let mut narrowed = 0;
        for (j, gene) in full.genes().iter().enumerate() {
            assert!(lo[j] <= best.genome[j] && best.genome[j] <= hi[j]);
            if hi[j] - lo[j] < gene.hi() - gene.lo() {
                narrowed += 1;
            }
        }
        assert!(narrowed > 0, "no gene bounds narrowed after improvement");
    }

    #[test]
    fn stagnation_diverges_back_to_full_bounds() {
        let mut s = BestConfigSearch::new(wide_space(), cfg(8));
        // Round 1: real scores (establishes an incumbent, shrinks).
        let raw = batch_objective(&s.propose());
        s.observe(&raw);
        // Round 2: uniformly terrible scores — no improvement possible.
        let n = s.propose().len();
        s.observe(&vec![f64::NEG_INFINITY; n]);
        let (lo, hi) = s.bounds();
        for (j, gene) in wide_space().genes().iter().enumerate() {
            assert_eq!(lo[j], gene.lo());
            assert_eq!(hi[j], gene.hi());
        }
    }

    #[test]
    fn beats_its_own_first_round() {
        let mut s = BestConfigSearch::new(wide_space(), cfg(3));
        let first = s.propose();
        let first_best = batch_objective(&first)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        let out = run_strategy(&mut s, batch_objective);
        assert!(out.best_fitness >= first_best);
        assert_eq!(out.best_fitness, objective(&out.best_genome));
    }
}
