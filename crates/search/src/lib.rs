//! Pluggable search strategies over a typed parameter space.
//!
//! The paper tunes with a single GA-over-surrogate loop (§3.7.2). At
//! high dimension — the engine's widened 12+-knob catalog — that is one
//! point in a family: BestConfig-style divide-and-diverge sampling and
//! LatentTune-style latent-space search attack the same problem with
//! very different structure. This crate makes "a search strategy" a
//! first-class value so they can be compared on identical seeds and
//! budgets:
//!
//! - [`SearchStrategy`] — the propose/observe contract. A strategy emits
//!   *batches* of genomes (so a surrogate scores a whole generation with
//!   one [`rafiki_neural::Surrogate::predict_batch`]-style matrix pass),
//!   receives raw fitness values back, and is deterministic for a fixed
//!   seed.
//! - [`GaSearch`] — the existing [`rafiki_ga`] optimizer as a strategy,
//!   bit-identical to driving [`rafiki_ga::Optimizer::run_batch`]
//!   directly (pinned by test).
//! - [`BestConfigSearch`] — divide-and-diverge: Latin-hypercube rounds
//!   that recursively bound the space around the incumbent on
//!   improvement and diverge back to the full space when stuck.
//! - [`LatentSearch`] — train a small [`rafiki_neural::Autoencoder`]
//!   over a sampled design, run the GA in its latent box, decode with
//!   bounds clamping.
//! - [`RandomSearch`] — uniform sampling, the floor every strategy must
//!   clear.
//!
//! Genomes are plain `Vec<f64>` over a [`rafiki_ga::SearchSpace`] — the
//! same typed space the engine's parameter catalog maps onto — so any
//! strategy plugs into the tuner unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bestconfig;
mod ga;
mod latent;
mod random;

pub use bestconfig::{BestConfigConfig, BestConfigSearch};
pub use ga::GaSearch;
pub use latent::{LatentConfig, LatentSearch};
pub use random::RandomSearch;

pub use rafiki_ga::{GaConfig, GeneSpec, SearchSpace};

use serde::Serialize;

/// The best genome a strategy has seen so far, with its raw fitness.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchBest {
    /// The genome (feasible — strategies repair before reporting).
    pub genome: Vec<f64>,
    /// Raw fitness the evaluator returned for it.
    pub fitness: f64,
}

impl SearchBest {
    fn improve(slot: &mut Option<SearchBest>, genome: &[f64], fitness: f64) {
        let better = match slot {
            Some(b) => fitness > b.fitness,
            None => true,
        };
        if better && fitness.is_finite() {
            *slot = Some(SearchBest {
                genome: genome.to_vec(),
                fitness,
            });
        }
    }
}

/// A batch-first, deterministic black-box maximization strategy.
///
/// The loop contract:
///
/// 1. [`SearchStrategy::propose`] returns the genomes awaiting fitness —
///    an empty batch means the strategy is finished;
/// 2. the caller scores the batch (surrogate, real engine, anything) and
///    feeds one raw value per genome, in order, to
///    [`SearchStrategy::observe`];
/// 3. repeat until [`SearchStrategy::is_done`].
///
/// Determinism: a strategy seeded identically and fed identical
/// observation sequences must emit identical proposal sequences. All
/// randomness comes from seeded RNGs; nothing may depend on wall clock,
/// addresses, or iteration order of unordered containers.
pub trait SearchStrategy {
    /// Short stable identifier (used in records and tables).
    fn name(&self) -> &'static str;

    /// The batch of genomes currently awaiting fitness. Empty once done.
    fn propose(&mut self) -> Vec<Vec<f64>>;

    /// Feeds back one raw fitness per genome of the last
    /// [`SearchStrategy::propose`] batch, in order.
    ///
    /// # Panics
    ///
    /// Implementations panic on a length mismatch or when called after
    /// completion.
    fn observe(&mut self, raw: &[f64]);

    /// Whether the strategy has exhausted its budget.
    fn is_done(&self) -> bool;

    /// Fitness evaluations consumed so far.
    fn evaluations(&self) -> usize;

    /// Best (feasible genome, raw fitness) seen so far.
    fn best(&self) -> Option<SearchBest>;
}

/// Outcome of driving a strategy to completion.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchOutcome {
    /// [`SearchStrategy::name`] of the strategy that produced this.
    pub strategy: &'static str,
    /// Best genome found (feasible).
    pub best_genome: Vec<f64>,
    /// Raw fitness of the best genome.
    pub best_fitness: f64,
    /// Total fitness evaluations consumed.
    pub evaluations: usize,
    /// Number of propose/observe round trips.
    pub batches: usize,
}

/// Drives a strategy to completion against a batch evaluator and
/// returns its outcome. This is the whole orchestration loop — the
/// bake-off harness, the tuner, and the tests all go through it.
///
/// # Panics
///
/// Panics when the strategy finishes without having seen a single
/// finite-fitness genome (nothing to report as best).
pub fn run_strategy<S, F>(strategy: &mut S, mut fitness: F) -> SearchOutcome
where
    S: SearchStrategy + ?Sized,
    F: FnMut(&[Vec<f64>]) -> Vec<f64>,
{
    let mut batches = 0usize;
    while !strategy.is_done() {
        let batch = strategy.propose();
        if batch.is_empty() {
            break;
        }
        let raw = fitness(&batch);
        strategy.observe(&raw);
        batches += 1;
    }
    let best = strategy
        .best()
        .expect("strategy finished without a best genome");
    SearchOutcome {
        strategy: strategy.name(),
        best_genome: best.genome,
        best_fitness: best.fitness,
        evaluations: strategy.evaluations(),
        batches,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::SearchSpace;
    use rafiki_ga::GeneSpec;

    /// A 14-gene space shaped like the widened engine catalog: one
    /// categorical method, pool sizes, cache MB, thresholds — enough
    /// type mix to exercise repair on every strategy.
    pub fn wide_space() -> SearchSpace {
        SearchSpace::new(vec![
            GeneSpec::Categorical { options: 2 },
            GeneSpec::Int { min: 8, max: 128 },
            GeneSpec::Int { min: 16, max: 64 },
            GeneSpec::Int { min: 32, max: 512 },
            GeneSpec::Categorical { options: 3 },
            GeneSpec::Real {
                min: 0.10,
                max: 0.90,
            },
            GeneSpec::Int { min: 64, max: 512 },
            GeneSpec::Int { min: 1, max: 16 },
            GeneSpec::Int {
                min: 1_000,
                max: 20_000,
            },
            GeneSpec::Real {
                min: 0.001,
                max: 0.2,
            },
            GeneSpec::Int { min: 16, max: 256 },
            GeneSpec::Int { min: 2, max: 8 },
            GeneSpec::Int { min: 2, max: 32 },
            GeneSpec::Int { min: 4, max: 16 },
        ])
    }

    /// Smooth multimodal objective over the wide space, maximized at a
    /// known interior point; deterministic and cheap.
    pub fn objective(g: &[f64]) -> f64 {
        let mut s = 0.0;
        for (i, &v) in g.iter().enumerate() {
            let t = (i as f64 + 1.0) * 0.37;
            s -= ((v - t * 10.0) / (10.0 * (i as f64 + 1.0))).powi(2);
        }
        s
    }

    pub fn batch_objective(pop: &[Vec<f64>]) -> Vec<f64> {
        pop.iter().map(|g| objective(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{batch_objective, wide_space};
    use super::*;

    fn all_strategies(seed: u64) -> Vec<Box<dyn SearchStrategy>> {
        let space = wide_space();
        let ga_cfg = GaConfig {
            population: 16,
            generations: 8,
            seed,
            ..GaConfig::default()
        };
        vec![
            Box::new(GaSearch::new(space.clone(), ga_cfg)),
            Box::new(BestConfigSearch::new(
                space.clone(),
                BestConfigConfig {
                    samples_per_round: 16,
                    rounds: 9,
                    seed,
                    ..BestConfigConfig::default()
                },
            )),
            Box::new(LatentSearch::new(
                space.clone(),
                LatentConfig {
                    design_samples: 32,
                    latent_dim: 4,
                    autoencoder_epochs: 40,
                    ga: GaConfig {
                        population: 16,
                        generations: 6,
                        seed,
                        ..GaConfig::default()
                    },
                    seed,
                },
            )),
            Box::new(RandomSearch::new(space, 144, 16, seed)),
        ]
    }

    #[test]
    fn every_strategy_completes_and_reports_a_feasible_best() {
        let space = wide_space();
        for mut s in all_strategies(7) {
            let out = run_strategy(s.as_mut(), batch_objective);
            assert!(out.evaluations > 0, "{} did no work", out.strategy);
            assert!(out.batches > 0);
            assert!(
                space.is_feasible(&out.best_genome),
                "{} best infeasible: {:?}",
                out.strategy,
                out.best_genome
            );
            assert!(out.best_fitness.is_finite());
        }
    }

    #[test]
    fn same_seed_same_observations_identical_proposals() {
        // The determinism contract, checked for all four strategies: two
        // instances with the same seed fed the same observation sequence
        // must produce identical proposal sequences end to end.
        for (a, b) in all_strategies(42).into_iter().zip(all_strategies(42)) {
            let (mut a, mut b) = (a, b);
            let mut rounds = 0usize;
            while !a.is_done() || !b.is_done() {
                assert_eq!(a.is_done(), b.is_done(), "{} desynced", a.name());
                let (pa, pb) = (a.propose(), b.propose());
                assert_eq!(pa, pb, "{} proposals diverged at round {rounds}", a.name());
                if pa.is_empty() {
                    break;
                }
                let raw = batch_objective(&pa);
                a.observe(&raw);
                b.observe(&raw);
                rounds += 1;
            }
            assert_eq!(a.evaluations(), b.evaluations());
            assert_eq!(a.best(), b.best(), "{} bests diverged", a.name());
            assert!(rounds > 0);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        for (a, b) in all_strategies(1).into_iter().zip(all_strategies(2)) {
            let (mut a, mut b) = (a, b);
            let (pa, pb) = (a.propose(), b.propose());
            assert_ne!(pa, pb, "{} ignored its seed", a.name());
        }
    }

    #[test]
    fn run_strategy_counts_match_strategy_accounting() {
        let mut total = 0usize;
        let space = wide_space();
        let mut s = RandomSearch::new(space, 50, 16, 3);
        let out = run_strategy(&mut s, |pop| {
            total += pop.len();
            batch_objective(pop)
        });
        assert_eq!(out.evaluations, total);
        assert_eq!(out.evaluations, 50);
        // ceil(50 / 16) batches.
        assert_eq!(out.batches, 4);
    }
}
