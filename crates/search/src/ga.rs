//! The paper's genetic algorithm wrapped as a [`SearchStrategy`].
//!
//! This is a zero-logic adapter over [`rafiki_ga::GaStepper`]: the
//! proposal sequence, evaluation count, and final best are bit-identical
//! to calling [`rafiki_ga::Optimizer::run_batch`] with the same space,
//! config, and evaluator — the stepper *is* the optimizer's inner loop,
//! and a test below pins the equivalence.

use crate::{SearchBest, SearchStrategy};
use rafiki_ga::{GaConfig, GaResult, GaStepper, SearchSpace};

/// [`rafiki_ga`]'s generational GA as a pluggable strategy.
pub struct GaSearch {
    space: SearchSpace,
    stepper: Option<GaStepper>,
    result: Option<GaResult>,
    /// Best feasible genome observed mid-run (before the GA's own final
    /// verdict is available).
    running_best: Option<SearchBest>,
    last_batch: Vec<Vec<f64>>,
}

impl GaSearch {
    /// Creates the strategy. Panics on an invalid [`GaConfig`] exactly
    /// like [`rafiki_ga::Optimizer::new`].
    pub fn new(space: SearchSpace, cfg: GaConfig) -> Self {
        GaSearch {
            stepper: Some(GaStepper::new(space.clone(), cfg)),
            space,
            result: None,
            running_best: None,
            last_batch: Vec::new(),
        }
    }

    /// The GA's own result once finished (the bit-identical
    /// [`GaResult`]), if the run is complete.
    pub fn result(&self) -> Option<&GaResult> {
        self.result.as_ref()
    }
}

impl SearchStrategy for GaSearch {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn propose(&mut self) -> Vec<Vec<f64>> {
        let batch = match &self.stepper {
            Some(s) => s.propose(),
            None => Vec::new(),
        };
        self.last_batch = batch.clone();
        batch
    }

    fn observe(&mut self, raw: &[f64]) {
        let stepper = self
            .stepper
            .as_mut()
            .expect("observe called after GA search completed");
        for (genome, &fit) in self.last_batch.iter().zip(raw) {
            if self.space.is_feasible(genome) {
                SearchBest::improve(&mut self.running_best, genome, fit);
            }
        }
        stepper.observe(raw);
        if stepper.is_done() {
            let result = self.stepper.take().expect("stepper present").into_result();
            self.result = Some(result);
        }
    }

    fn is_done(&self) -> bool {
        self.result.is_some()
    }

    fn evaluations(&self) -> usize {
        match (&self.result, &self.stepper) {
            (Some(r), _) => r.evaluations,
            (None, Some(s)) => s.evaluations(),
            (None, None) => 0,
        }
    }

    fn best(&self) -> Option<SearchBest> {
        // Once the GA has ruled, its verdict is authoritative — that is
        // what makes the outcome bit-identical to `Optimizer::run_batch`.
        if let Some(r) = &self.result {
            return Some(SearchBest {
                genome: r.best_genome.clone(),
                fitness: r.best_fitness,
            });
        }
        self.running_best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_strategy;
    use crate::testutil::{batch_objective, wide_space};
    use rafiki_ga::Optimizer;

    fn cfg(seed: u64) -> GaConfig {
        GaConfig {
            population: 12,
            generations: 7,
            seed,
            ..GaConfig::default()
        }
    }

    #[test]
    fn bit_identical_to_direct_optimizer_run_batch() {
        for seed in [0u64, 1, 7, 99, 12345] {
            let direct = Optimizer::new(wide_space(), cfg(seed)).run_batch(batch_objective);
            let mut strat = GaSearch::new(wide_space(), cfg(seed));
            let out = run_strategy(&mut strat, batch_objective);
            assert_eq!(out.best_genome, direct.best_genome, "seed {seed}");
            assert_eq!(out.best_fitness, direct.best_fitness, "seed {seed}");
            assert_eq!(out.evaluations, direct.evaluations, "seed {seed}");
            let result = strat.result().expect("finished");
            assert_eq!(result.history, direct.history, "seed {seed}");
        }
    }

    #[test]
    fn proposal_sequence_matches_raw_stepper() {
        let mut stepper = GaStepper::new(wide_space(), cfg(3));
        let mut strat = GaSearch::new(wide_space(), cfg(3));
        while !stepper.is_done() {
            assert!(!strat.is_done());
            let (a, b) = (stepper.propose(), strat.propose());
            assert_eq!(a, b);
            let raw = batch_objective(&a);
            stepper.observe(&raw);
            strat.observe(&raw);
        }
        assert!(strat.is_done());
        assert!(strat.propose().is_empty());
    }

    #[test]
    fn evaluation_budget_is_pop_times_gens_plus_one_plus_final() {
        let mut strat = GaSearch::new(wide_space(), cfg(11));
        let out = run_strategy(&mut strat, batch_objective);
        // Initial population + one population per generation + the final
        // repaired-best confirmation pass.
        assert_eq!(out.evaluations, 12 * (7 + 1) + 1);
    }

    #[test]
    #[should_panic(expected = "after GA search completed")]
    fn observe_after_done_panics() {
        let mut strat = GaSearch::new(wide_space(), cfg(0));
        run_strategy(&mut strat, batch_objective);
        strat.observe(&[0.0]);
    }
}
