//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use rafiki_stats::descriptive::{mean, percentile, population_variance, r_squared, rmse};
use rafiki_stats::dist::{Exponential, FDist, Normal};
use rafiki_stats::special::betai;
use rafiki_stats::{Histogram, OneWayAnova};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn betai_is_monotone_in_x(
        a in 0.2f64..8.0,
        b in 0.2f64..8.0,
        x1 in 0.01f64..0.98,
        dx in 0.001f64..0.02,
    ) {
        let x2 = (x1 + dx).min(0.999);
        prop_assert!(betai(a, b, x1) <= betai(a, b, x2) + 1e-12);
    }

    #[test]
    fn betai_stays_in_unit_interval(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..=1.0) {
        let v = betai(a, b, x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "betai = {v}");
    }

    #[test]
    fn f_cdf_is_a_cdf(d1 in 1u32..30, d2 in 1u32..30, x in 0.0f64..50.0) {
        let f = FDist::new(d1 as f64, d2 as f64).unwrap();
        let c = f.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(f.cdf(x + 1.0) >= c - 1e-12);
    }

    #[test]
    fn exponential_quantile_cdf_inverse(lambda in 0.01f64..100.0, p in 0.0f64..0.999) {
        let e = Exponential::new(lambda).unwrap();
        prop_assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_is_symmetric(mu in -100.0f64..100.0, sigma in 0.1f64..50.0, d in 0.0f64..100.0) {
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((n.cdf(mu + d) + n.cdf(mu - d) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in prop::collection::vec(-1e4f64..1e4, 2..50),
        shift in -1e4f64..1e4,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = population_variance(&xs);
        let v2 = population_variance(&shifted);
        prop_assert!((v1 - v2).abs() <= 1e-6 * v1.abs().max(1.0));
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    #[test]
    fn rmse_zero_iff_equal(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        prop_assert_eq!(rmse(&xs, &xs), 0.0);
        prop_assert!((r_squared(&xs, &xs) - 1.0).abs() < 1e-12 || population_variance(&xs) == 0.0);
    }

    #[test]
    fn histogram_conserves_mass(
        values in prop::collection::vec(-1e3f64..1e3, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(-100.0, 100.0, bins).unwrap();
        h.extend(values.iter().cloned());
        prop_assert_eq!(h.total(), values.len() as u64);
        let counted: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(counted, values.len() as u64);
    }

    #[test]
    fn anova_f_is_nonnegative(
        g1 in prop::collection::vec(0.0f64..1e4, 2..20),
        g2 in prop::collection::vec(0.0f64..1e4, 2..20),
        g3 in prop::collection::vec(0.0f64..1e4, 2..20),
    ) {
        let a = OneWayAnova::from_groups(&[g1, g2, g3]).unwrap();
        prop_assert!(a.f_statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&a.p_value));
        prop_assert!((0.0..=1.0).contains(&a.eta_squared));
    }

    #[test]
    fn mean_lies_between_min_and_max(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
    }
}
