//! Descriptive statistics: mean, variance, percentiles, and the regression
//! quality metrics (MAPE, RMSE, R²) reported in Table 2 of the paper.

use crate::StatsError;

/// Arithmetic mean. Returns `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when fewer than two observations
/// are supplied.
pub fn sample_variance(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            what: "sample variance",
            needed: 2,
            got: xs.len(),
        });
    }
    let m = mean(xs);
    let ss = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
///
/// # Errors
///
/// Propagates the error from [`sample_variance`].
pub fn sample_std_dev(xs: &[f64]) -> Result<f64, StatsError> {
    sample_variance(xs).map(f64::sqrt)
}

/// Population variance (divides by `n`). Returns `0.0` for fewer than two
/// samples, matching the convention the paper's ANOVA scoring uses when a
/// parameter only admits one value.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile requires p in [0,100]"
    );
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mean absolute percentage error between predictions and targets, in
/// percent (e.g. `7.5` for 7.5%). Target entries equal to zero are skipped.
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mape length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a != 0.0 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Root-mean-square error.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let ss = predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a) * (p - a))
        .sum::<f64>();
    (ss / predicted.len() as f64).sqrt()
}

/// Coefficient of determination R². Can be negative for models worse than
/// predicting the mean.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "r_squared length mismatch");
    let m = mean(actual);
    let ss_tot = actual.iter().map(|&a| (a - m) * (a - m)).sum::<f64>();
    let ss_res = predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (a - p) * (a - p))
        .sum::<f64>();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation (0 when n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for empty input.
    pub fn of(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData {
                what: "summary",
                needed: 1,
                got: 0,
            });
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: sample_std_dev(xs).unwrap_or(0.0),
            min,
            median: percentile(xs, 50.0),
            max,
        })
    }

    /// Coefficient of variation (`std_dev / mean`); `0` when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} med={:.2} max={:.2}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_requires_two_points() {
        assert!(sample_variance(&[1.0]).is_err());
        assert_eq!(population_variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let pred = [110.0, 50.0];
        let act = [100.0, 0.0];
        assert!((mape(&pred, &act) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_r2() {
        let act = [1.0, 2.0, 3.0, 4.0];
        let perfect = act;
        assert_eq!(rmse(&perfect, &act), 0.0);
        assert_eq!(r_squared(&perfect, &act), 1.0);
        let mean_model = [2.5, 2.5, 2.5, 2.5];
        assert!((r_squared(&mean_model, &act)).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(Summary::of(&[]).is_err());
    }
}
