//! Probability distributions used by the Rafiki pipeline.
//!
//! - [`FDist`] provides the p-values for the ANOVA parameter screen.
//! - [`Exponential`] models the key-reuse distance (KRD) of MG-RAST-style
//!   workloads; the paper fits an exponential distribution to the observed
//!   reuse distances (§3.3) and drives benchmarking from that fit.
//! - [`Normal`] backs the prediction-error histogram overlays.

use crate::special::{betai, erf};
use crate::StatsError;

/// Fisher–Snedecor F distribution with `d1` and `d2` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FDist {
    /// Numerator (between-groups) degrees of freedom.
    pub d1: f64,
    /// Denominator (within-groups) degrees of freedom.
    pub d2: f64,
}

impl FDist {
    /// Creates an F distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if either degrees-of-freedom value is
    /// not strictly positive.
    pub fn new(d1: f64, d2: f64) -> Result<Self, StatsError> {
        if d1 <= 0.0 || d2 <= 0.0 {
            return Err(StatsError::Domain {
                what: "F degrees of freedom",
            });
        }
        Ok(Self { d1, d2 })
    }

    /// Cumulative distribution function `P(F <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = self.d1 * x / (self.d1 * x + self.d2);
        betai(self.d1 / 2.0, self.d2 / 2.0, z)
    }

    /// Survival function `P(F > x)`, i.e. the p-value for an observed
    /// F statistic `x`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used as the model for key-reuse distances. The paper fits this
/// distribution to the 4-day MG-RAST trace and then drives the synthetic
/// benchmark with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter; the mean of the distribution is `1 / lambda`.
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] when `lambda <= 0`.
    pub fn new(lambda: f64) -> Result<Self, StatsError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(StatsError::Domain { what: "lambda" });
        }
        Ok(Self { lambda })
    }

    /// Maximum-likelihood fit: `lambda = 1 / mean(samples)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for empty input and
    /// [`StatsError::Domain`] when the sample mean is not positive.
    pub fn fit_mle(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::NotEnoughData {
                what: "exponential MLE",
                needed: 1,
                got: 0,
            });
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if mean <= 0.0 {
            return Err(StatsError::Domain {
                what: "sample mean",
            });
        }
        Self::new(1.0 / mean)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    /// Inverse CDF (quantile function) for `p ∈ [0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile requires p in [0,1), got {p}"
        );
        -(1.0 - p).ln() / self.lambda
    }

    /// Draws a sample using the inversion method from a uniform variate
    /// `u ∈ [0, 1)` supplied by the caller (keeps this crate RNG-free).
    pub fn sample_from_uniform(&self, u: f64) -> f64 {
        self.quantile(u.clamp(0.0, 1.0 - 1e-15))
    }
}

/// Normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (must be positive).
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] when `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(StatsError::Domain { what: "sigma" });
        }
        Ok(Self { mu, sigma })
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn f_cdf_reference_values() {
        // F(1, 1): cdf(1) = 0.5
        let f11 = FDist::new(1.0, 1.0).unwrap();
        assert_close(f11.cdf(1.0), 0.5, 1e-9);
        // F(2, 2): cdf(x) = x / (1 + x)
        let f22 = FDist::new(2.0, 2.0).unwrap();
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert_close(f22.cdf(x), x / (1.0 + x), 1e-9);
        }
        // Reference from numerical integration of the F(3,10) density.
        let f = FDist::new(3.0, 10.0).unwrap();
        assert_close(f.cdf(4.0), 0.958_652_3, 2e-6);
    }

    #[test]
    fn f_sf_is_complement() {
        let f = FDist::new(4.0, 16.0).unwrap();
        assert_close(f.cdf(2.5) + f.sf(2.5), 1.0, 1e-12);
    }

    #[test]
    fn f_rejects_bad_dof() {
        assert!(FDist::new(0.0, 3.0).is_err());
        assert!(FDist::new(2.0, -1.0).is_err());
    }

    #[test]
    fn exponential_fit_recovers_mean() {
        let samples = vec![2.0, 4.0, 6.0, 8.0];
        let e = Exponential::fit_mle(&samples).unwrap();
        assert_close(e.mean(), 5.0, 1e-12);
        assert_close(e.lambda, 0.2, 1e-12);
    }

    #[test]
    fn exponential_quantile_inverts_cdf() {
        let e = Exponential::new(0.5).unwrap();
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            assert_close(e.cdf(e.quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn exponential_rejects_bad_input() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::fit_mle(&[]).is_err());
        assert!(Exponential::fit_mle(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn normal_cdf_reference_values() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert_close(n.cdf(0.0), 0.5, 1e-9);
        assert_close(n.cdf(1.96), 0.975, 1e-3);
        assert_close(n.cdf(-1.96), 0.025, 1e-3);
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let n = Normal::new(2.0, 3.0).unwrap();
        let mut sum = 0.0;
        let dx = 0.01;
        let mut x = -20.0;
        while x < 24.0 {
            sum += n.pdf(x) * dx;
            x += dx;
        }
        assert_close(sum, 1.0, 1e-3);
    }
}
