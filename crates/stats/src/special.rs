//! Special functions: log-gamma, regularized incomplete beta, and error
//! function. These back the distribution CDFs in [`crate::dist`].
//!
//! Implementations follow the classic Lanczos / modified-Lentz formulations
//! and are accurate to roughly 1e-10 over the ranges exercised by the
//! Rafiki experiments (F-tests with a handful of degrees of freedom).

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not
/// implemented; the statistics in this crate only need positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`, computed with the continued-fraction expansion
/// (modified Lentz's method).
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires x in [0,1], got {x}"
    );
    assert!(
        a > 0.0 && b > 0.0,
        "betai requires a,b > 0, got a={a}, b={b}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Numerical Recipes
/// `betacf`), evaluated via modified Lentz's method.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, via Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with one continued-fraction-free correction; the
/// absolute error is below 1.2e-7 which is ample for histogram overlays.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9, 25.0] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-9);
        }
    }

    #[test]
    fn betai_boundary_values() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (5.0, 1.5, 0.7)] {
            assert_close(betai(a, b, x), 1.0 - betai(b, a, 1.0 - x), 1e-10);
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert_close(betai(1.0, 1.0, x), x, 1e-10);
        }
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = x^2(3-2x) = 0.15625
        assert_close(betai(2.0, 2.0, 0.5), 0.5, 1e-10);
        assert_close(betai(2.0, 2.0, 0.25), 0.15625, 1e-10);
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(1.0), 0.842_700_79, 2e-7);
        assert_close(erf(-1.0), -0.842_700_79, 2e-7);
        assert_close(erf(2.0), 0.995_322_27, 2e-7);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic]
    fn betai_rejects_out_of_range_x() {
        let _ = betai(1.0, 1.0, 1.5);
    }
}
