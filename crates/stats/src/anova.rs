//! One-way analysis of variance (ANOVA), the parameter screen of Rafiki.
//!
//! §3.4 of the paper: each configuration parameter is varied individually
//! (all other parameters at defaults), the resulting throughputs form one
//! group per tested value, and parameters are ranked by the variance of the
//! per-value mean throughput. A "distinct drop" between the top-k and
//! top-(k+1) scores selects the key parameters.

use crate::descriptive::{mean, population_variance};
use crate::dist::FDist;
use crate::StatsError;

/// Result of a one-way ANOVA over groups of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct OneWayAnova {
    /// Between-group sum of squares.
    pub ss_between: f64,
    /// Within-group sum of squares.
    pub ss_within: f64,
    /// Between-group degrees of freedom (`k - 1`).
    pub df_between: usize,
    /// Within-group degrees of freedom (`n - k`).
    pub df_within: usize,
    /// The F statistic.
    pub f_statistic: f64,
    /// p-value for the F statistic.
    pub p_value: f64,
    /// Effect size η² = SSB / (SSB + SSW).
    pub eta_squared: f64,
}

impl OneWayAnova {
    /// Runs a one-way ANOVA over `groups` (one group per factor level).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] unless there are at least two
    /// groups and at least one more observation than groups (so that the
    /// within-group degrees of freedom are positive).
    pub fn from_groups(groups: &[Vec<f64>]) -> Result<Self, StatsError> {
        let k = groups.len();
        let n: usize = groups.iter().map(Vec::len).sum();
        if k < 2 {
            return Err(StatsError::NotEnoughData {
                what: "ANOVA groups",
                needed: 2,
                got: k,
            });
        }
        if n <= k {
            return Err(StatsError::NotEnoughData {
                what: "ANOVA observations",
                needed: k + 1,
                got: n,
            });
        }
        let all: Vec<f64> = groups.iter().flatten().copied().collect();
        let grand = mean(&all);
        let mut ssb = 0.0;
        let mut ssw = 0.0;
        for g in groups {
            if g.is_empty() {
                continue;
            }
            let gm = mean(g);
            ssb += g.len() as f64 * (gm - grand) * (gm - grand);
            ssw += g.iter().map(|x| (x - gm) * (x - gm)).sum::<f64>();
        }
        let df_b = k - 1;
        let df_w = n - k;
        let msb = ssb / df_b as f64;
        let msw = ssw / df_w as f64;
        let f_statistic = if msw == 0.0 {
            if msb == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            msb / msw
        };
        let p_value = if f_statistic.is_finite() {
            FDist::new(df_b as f64, df_w as f64)?.sf(f_statistic)
        } else {
            0.0
        };
        let eta_squared = if ssb + ssw == 0.0 {
            0.0
        } else {
            ssb / (ssb + ssw)
        };
        Ok(OneWayAnova {
            ss_between: ssb,
            ss_within: ssw,
            df_between: df_b,
            df_within: df_w,
            f_statistic,
            p_value,
            eta_squared,
        })
    }
}

/// The screening score for one configuration parameter: the spread of mean
/// throughput across its tested values. This is the quantity plotted in
/// Figure 5 of the paper ("standard deviation in throughput for the top 20
/// configuration parameters").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParameterEffect {
    /// Parameter name.
    pub name: String,
    /// Standard deviation of per-value mean throughput.
    pub std_dev: f64,
    /// Variance of per-value mean throughput (`std_dev²`), the paper's
    /// `var(S1, S2, S3)` score.
    pub variance: f64,
}

impl ParameterEffect {
    /// Scores a parameter from one group of throughput samples per tested
    /// value: the groups are first collapsed to their means (`S1..Sk` in the
    /// paper's notation), then the population variance of those means is the
    /// score.
    pub fn from_group_means(name: impl Into<String>, groups: &[Vec<f64>]) -> Self {
        let means: Vec<f64> = groups.iter().map(|g| mean(g)).collect();
        let variance = population_variance(&means);
        ParameterEffect {
            name: name.into(),
            std_dev: variance.sqrt(),
            variance,
        }
    }
}

/// Sorts effects by descending standard deviation and selects the top-k
/// where `k` is chosen at the largest relative drop between consecutive
/// scores ("we find empirically that there is a distinct drop in the
/// variance when going from top-k to top-(k+1)", §3.4.1).
///
/// `min_keep`/`max_keep` bound the selection so a freak plateau cannot
/// select one parameter or all of them.
pub fn select_top_k_by_drop(
    effects: &[ParameterEffect],
    min_keep: usize,
    max_keep: usize,
) -> Vec<ParameterEffect> {
    assert!(min_keep >= 1 && min_keep <= max_keep, "invalid keep bounds");
    let mut sorted: Vec<ParameterEffect> = effects.to_vec();
    sorted.sort_by(|a, b| {
        b.std_dev
            .partial_cmp(&a.std_dev)
            .expect("NaN parameter effect")
    });
    if sorted.len() <= min_keep {
        return sorted;
    }
    let max_keep = max_keep.min(sorted.len());
    // Find the cut with the largest relative drop sd[k-1] / sd[k] within
    // [min_keep, max_keep].
    let mut best_k = min_keep;
    let mut best_ratio = 0.0f64;
    for k in min_keep..max_keep {
        // Drop between index k-1 (last kept) and k (first discarded).
        let kept = sorted[k - 1].std_dev;
        let next = sorted[k].std_dev;
        let ratio = if next <= f64::EPSILON {
            f64::INFINITY
        } else {
            kept / next
        };
        if ratio > best_ratio {
            best_ratio = ratio;
            best_k = k;
        }
    }
    sorted.truncate(best_k);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anova_detects_separated_groups() {
        let groups = vec![
            vec![10.0, 11.0, 9.0],
            vec![20.0, 21.0, 19.0],
            vec![30.0, 29.0, 31.0],
        ];
        let a = OneWayAnova::from_groups(&groups).unwrap();
        assert!(a.f_statistic > 100.0);
        assert!(a.p_value < 1e-6);
        assert!(a.eta_squared > 0.95);
    }

    #[test]
    fn anova_flat_groups_give_small_f() {
        let groups = vec![vec![10.0, 11.0, 9.0, 10.5], vec![10.2, 10.8, 9.4, 10.1]];
        let a = OneWayAnova::from_groups(&groups).unwrap();
        assert!(a.f_statistic < 2.0);
        assert!(a.p_value > 0.1);
    }

    #[test]
    fn anova_reference_value() {
        // Classic textbook example; F should match a hand computation.
        let groups = vec![
            vec![6.0, 8.0, 4.0, 5.0, 3.0, 4.0],
            vec![8.0, 12.0, 9.0, 11.0, 6.0, 8.0],
            vec![13.0, 9.0, 11.0, 8.0, 7.0, 12.0],
        ];
        let a = OneWayAnova::from_groups(&groups).unwrap();
        assert_eq!(a.df_between, 2);
        assert_eq!(a.df_within, 15);
        assert!(
            (a.f_statistic - 9.264).abs() < 0.05,
            "F = {}",
            a.f_statistic
        );
        assert!(a.p_value < 0.01);
    }

    #[test]
    fn anova_needs_enough_data() {
        assert!(OneWayAnova::from_groups(&[vec![1.0, 2.0]]).is_err());
        assert!(OneWayAnova::from_groups(&[vec![1.0], vec![2.0]]).is_err());
    }

    #[test]
    fn effect_score_is_variance_of_means() {
        let groups = vec![vec![10.0, 10.0], vec![20.0, 20.0]];
        let e = ParameterEffect::from_group_means("p", &groups);
        // Means 10 and 20, population variance 25, sd 5.
        assert!((e.variance - 25.0).abs() < 1e-12);
        assert!((e.std_dev - 5.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_selection_finds_the_drop() {
        let effects: Vec<ParameterEffect> = [
            ("a", 110.0),
            ("b", 100.0),
            ("c", 90.0),
            ("d", 85.0),
            ("e", 80.0),
            ("f", 8.0), // distinct drop here -> keep 5
            ("g", 7.0),
        ]
        .iter()
        .map(|&(n, sd)| ParameterEffect {
            name: n.to_string(),
            std_dev: sd,
            variance: sd * sd,
        })
        .collect();
        let top = select_top_k_by_drop(&effects, 2, 6);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].name, "a");
        assert_eq!(top[4].name, "e");
    }

    #[test]
    fn top_k_respects_bounds() {
        let effects: Vec<ParameterEffect> = (0..10)
            .map(|i| ParameterEffect {
                name: format!("p{i}"),
                std_dev: 100.0 - i as f64, // smooth decay, no clear drop
                variance: 0.0,
            })
            .collect();
        let top = select_top_k_by_drop(&effects, 3, 5);
        assert!(top.len() >= 3 && top.len() <= 5);
    }
}
