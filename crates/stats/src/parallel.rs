//! Deterministic index-scatter parallelism.
//!
//! The data-collection grid (§4.2 of the paper: read ratios x
//! configurations) is embarrassingly parallel — each point is an
//! independent deterministic simulation — so the only thing a parallel
//! runner must guarantee is that results land in the same order the
//! sequential loop would produce them. [`parallel_indexed`] provides
//! that contract: workers claim indices from a shared atomic counter,
//! collect `(index, value)` pairs locally, and the pairs are scattered
//! back into index order after the scope joins. No shared result vector
//! sits behind a lock, so a panicking worker cannot poison anything; a
//! panic in any worker surfaces as `Err` instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0)..f(n-1)` across OS threads and returns the results in
/// index order.
///
/// Workers pull indices from a shared atomic counter (dynamic load
/// balancing — grid points vary in cost with the configuration under
/// test), buffer `(index, value)` pairs locally, and the buffers are
/// scattered into a dense vector after all threads join. Because each
/// index is claimed exactly once and placed by index, the output is
/// bit-identical to the sequential `(0..n).map(f)` loop whenever `f`
/// itself is deterministic in its index.
///
/// # Errors
///
/// Returns `Err` when any worker panics; the remaining workers finish
/// their current item and drain the counter, and no partial results
/// leak out.
pub fn parallel_indexed<T, F>(n: usize, f: F) -> Result<Vec<T>, String>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (f_ref, next_ref) = (&f, &next);
    let joined: Vec<Result<Vec<(usize, T)>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f_ref(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "evaluation worker panicked".to_string())
            })
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for local in joined {
        for (i, v) in local? {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.ok_or_else(|| format!("missing result for index {i}")))
        .collect()
}

/// SplitMix64 finalizer: a bijective avalanche mix over `u64`.
///
/// Used to derive independent per-point seeds from `base_seed ^ index`
/// so every grid point runs an unrelated workload stream regardless of
/// which thread executes it (the deterministic-parallelism contract —
/// seeds depend only on the point's index, never on scheduling).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let par = parallel_indexed(257, |i| i * i).unwrap();
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_poisoned_lock() {
        let res = parallel_indexed(8, |i| {
            assert!(i != 3, "boom");
            i * 2
        });
        let err = res.unwrap_err();
        assert!(err.contains("panicked"), "unexpected error: {err}");
        // A clean run over the same range still succeeds.
        let ok = parallel_indexed(8, |i| i * 2).unwrap();
        assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<usize> = parallel_indexed(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn handles_single_item() {
        assert_eq!(parallel_indexed(1, |i| i + 41).unwrap(), vec![41]);
    }

    #[test]
    fn mix64_avalanches_adjacent_inputs() {
        // Adjacent indices must map to unrelated seeds: check that every
        // pair of outputs differs in a large fraction of bits.
        let outs: Vec<u64> = (0u64..16).map(mix64).collect();
        for (i, &a) in outs.iter().enumerate() {
            for &b in &outs[i + 1..] {
                let differing = (a ^ b).count_ones();
                assert!(differing >= 16, "weak mixing: {a:#x} vs {b:#x}");
            }
        }
        // And it is a pure function.
        assert_eq!(mix64(12345), mix64(12345));
    }
}
