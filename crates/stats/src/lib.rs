//! Statistical primitives for the Rafiki reproduction.
//!
//! Rafiki (Mahgoub et al., Middleware '17) screens NoSQL configuration
//! parameters with a one-way analysis of variance (ANOVA): each parameter is
//! varied individually while the rest stay at their defaults, and parameters
//! are ranked by the variance they induce in throughput. This crate provides
//! that ANOVA, the special functions needed for its p-values, and the
//! descriptive statistics and histograms used throughout the evaluation
//! harness.
//!
//! # Example
//!
//! ```
//! use rafiki_stats::anova::{OneWayAnova, ParameterEffect};
//!
//! // Throughput samples for three settings of one parameter.
//! let groups = vec![
//!     vec![100.0, 101.0, 99.0],
//!     vec![150.0, 149.5, 151.0],
//!     vec![90.0, 91.0, 89.5],
//! ];
//! let anova = OneWayAnova::from_groups(&groups).unwrap();
//! assert!(anova.f_statistic > 1.0);
//! assert!(anova.p_value < 0.01);
//!
//! let effect = ParameterEffect::from_group_means("compaction_method", &groups);
//! assert!(effect.std_dev > 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod descriptive;
pub mod dist;
pub mod histogram;
pub mod parallel;
pub mod special;

pub use anova::{select_top_k_by_drop, OneWayAnova, ParameterEffect};
pub use descriptive::Summary;
pub use histogram::{Histogram, StreamingHistogram};
pub use parallel::{mix64, parallel_indexed};

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A computation needed more data points than were supplied.
    NotEnoughData {
        /// Name of the computation that failed.
        what: &'static str,
        /// Number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// An argument was outside of the function's domain.
    Domain {
        /// Name of the offending argument.
        what: &'static str,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotEnoughData { what, needed, got } => {
                write!(f, "{what} needs at least {needed} observations, got {got}")
            }
            StatsError::Domain { what } => write!(f, "argument {what} outside domain"),
        }
    }
}

impl std::error::Error for StatsError {}
