//! Histograms: fixed-bin ([`Histogram`], used to regenerate Figures 8
//! and 9 of the paper — distribution of surrogate prediction errors for
//! unseen configurations and unseen workloads) and log-linear streaming
//! ([`StreamingHistogram`], used by the benchmark harness to compute
//! latency percentiles without retaining or sorting the full sample
//! vector).

use crate::StatsError;

/// A histogram with equally sized bins over `[lo, hi)`; values outside the
/// range are clamped into the first/last bin so that every observation is
/// counted (matching how the paper's ±20% error plots bucket outliers).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 || lo >= hi {
            return Err(StatsError::Domain {
                what: "histogram range/bins",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation (clamped into range).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = if x < self.lo {
            0
        } else {
            (((x - self.lo) / w) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(bin_center, count)` pairs, ready for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// Fraction of observations whose bin center lies within `[-b, b]`.
    /// Used to report "most projections lie in the |5|% range" style claims.
    pub fn mass_within(&self, b: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let inside: u64 = self
            .centers()
            .iter()
            .filter(|(c, _)| c.abs() <= b)
            .map(|&(_, n)| n)
            .sum();
        inside as f64 / self.total as f64
    }

    /// Renders a small ASCII bar chart (one line per bin).
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (center, count) in self.centers() {
            let bar = (count as usize * width) / max as usize;
            out.push_str(&format!(
                "{center:>8.2} | {:<width$} {count}\n",
                "#".repeat(bar),
                width = width
            ));
        }
        out
    }
}

/// Sub-bucket resolution of [`StreamingHistogram`]: each power-of-two
/// range is split into `2^SUB_BITS` linear sub-buckets, bounding the
/// relative quantile error at `2^-(SUB_BITS + 1)` (≤ 0.4%).
const SUB_BITS: u32 = 7;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// An HDR-style log-linear histogram over non-negative integers
/// (latencies in nanoseconds, in the benchmark harness).
///
/// Values below `2^7` are recorded exactly; above that, each
/// power-of-two range `[2^e, 2^(e+1))` is split into 128 equal
/// sub-buckets, so any reported quantile is within 0.4% of the true
/// order statistic. Recording is O(1) and quantile extraction is a
/// single cumulative walk — no per-sample storage, no sort. The exact
/// minimum, maximum, and sum are tracked on the side, so `mean()` and
/// the extreme quantiles are exact.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let shift = exp - SUB_BITS;
        let sub = ((value >> shift) & (SUB_COUNT - 1)) as usize;
        ((((exp - SUB_BITS) as usize) + 1) << SUB_BITS) + sub
    }

    /// The midpoint of bucket `idx`'s value range (exact for the linear
    /// buckets below `2^7`).
    fn bucket_midpoint(idx: usize) -> u64 {
        if idx < SUB_COUNT as usize {
            return idx as u64;
        }
        let group = (idx >> SUB_BITS) as u32; // >= 1
        let shift = group - 1;
        let sub = (idx as u64) & (SUB_COUNT - 1);
        let lo = (SUB_COUNT + sub) << shift;
        lo + (1u64 << shift) / 2
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded values (zero when empty). Exposed for
    /// Prometheus-style `_sum` exposition, where the scraper derives
    /// rates from the running sum.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64)
    }

    /// Exact maximum recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact minimum recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Merges another histogram into this one. Because both sides share
    /// the same fixed bucket layout, merging is exact: the result is
    /// indistinguishable from having recorded every observation of both
    /// histograms into one. Used to aggregate per-client latency
    /// histograms into the `stats` view of the serving daemon.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.total == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0 < q <= 1`) by the nearest-rank definition:
    /// the smallest recorded value whose cumulative count reaches
    /// `ceil(q * total)`. For `n = 100` and `q = 0.99` this is the 99th
    /// smallest value — **not** the maximum (the off-by-one that
    /// `(n as f64 * q) as usize` indexing commits). Approximated to
    /// within one sub-bucket (≤ 0.4% relative error); the top rank
    /// returns the exact maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank == self.total {
            return Some(self.max);
        }
        let mut cumulative = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(Self::bucket_midpoint(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend([0.5, 1.5, 9.9, 5.0, 4.999]);
        assert_eq!(h.count(0), 2); // 0.5, 1.5
        assert_eq!(h.count(2), 2); // 4.999, 5.0
        assert_eq!(h.count(4), 1); // 9.9
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(-1.0, 1.0, 4).unwrap();
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4).unwrap();
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn mass_within_band() {
        let mut h = Histogram::new(-10.0, 10.0, 20).unwrap();
        for _ in 0..8 {
            h.add(0.1);
        }
        h.add(9.0);
        h.add(-9.0);
        assert!((h.mass_within(5.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 1.5, 1.6, 2.5]);
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn streaming_buckets_are_monotone_and_midpoints_consistent() {
        // Bucket index must be non-decreasing in the value, and each
        // value's bucket midpoint must be within half a bucket width.
        let mut prev = 0usize;
        for v in (0u64..100_000).step_by(37).chain([u64::MAX / 2, u64::MAX]) {
            let idx = StreamingHistogram::bucket_of(v);
            assert!(idx >= prev || v < 37, "bucket order broke at {v}");
            prev = prev.max(idx);
            let mid = StreamingHistogram::bucket_midpoint(idx);
            let tolerance = (v / 128).max(1);
            assert!(
                mid.abs_diff(v) <= tolerance,
                "midpoint {mid} too far from {v}"
            );
        }
    }

    #[test]
    fn streaming_small_values_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in [0u64, 1, 5, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.2), Some(0));
        assert_eq!(h.quantile(0.6), Some(5));
        assert_eq!(h.quantile(1.0), Some(127));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(127));
    }

    #[test]
    fn streaming_p99_of_1_to_100_is_99_not_100() {
        // The known-distribution check from the nearest-rank definition:
        // ranks 1..=100 in milliseconds-as-nanoseconds; p99 must select
        // the 99th value, not the max.
        let mut h = StreamingHistogram::new();
        for ms in 1..=100u64 {
            h.record(ms * 1_000_000);
        }
        let p99 = h.quantile(0.99).unwrap();
        let err = (p99 as f64 - 99.0e6).abs() / 99.0e6;
        assert!(err < 0.004, "p99 {p99} deviates {err:.4} from 99 ms");
        assert!(p99 < 100_000_000, "p99 selected the max");
        assert_eq!(h.quantile(1.0), Some(100_000_000));
        let mean = h.mean().unwrap();
        assert!((mean - 50.5e6).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn streaming_quantiles_track_exact_within_error_bound() {
        let mut h = StreamingHistogram::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 7_777_777).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = h.quantile(q).unwrap();
            let tolerance = (exact / 128).max(1);
            assert!(
                approx.abs_diff(exact) <= tolerance,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn streaming_merge_of_halves_equals_whole() {
        // Counts, totals, extremes and every interesting quantile of
        // merge(first half, second half) must equal the histogram of the
        // whole stream.
        let values: Vec<u64> = (0..9_999u64)
            .map(|i| (i * 2_654_435_761) % 5_000_000)
            .collect();
        let mut whole = StreamingHistogram::new();
        let mut first = StreamingHistogram::new();
        let mut second = StreamingHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < values.len() / 2 {
                first.record(v);
            } else {
                second.record(v);
            }
        }
        let mut merged = first.clone();
        merged.merge(&second);
        assert_eq!(merged, whole, "merge must be bucket-exact");
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.mean(), whole.mean());
        for &q in &[0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn streaming_merge_with_empty_is_identity() {
        let mut h = StreamingHistogram::new();
        h.record(42);
        h.record(7);
        let snapshot = h.clone();
        h.merge(&StreamingHistogram::new());
        assert_eq!(h, snapshot);
        let mut empty = StreamingHistogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn streaming_merge_of_two_empties_stays_usable() {
        // The empty-histogram min sentinel (u64::MAX) must not leak
        // through a merge of two empties into later recordings.
        let mut a = StreamingHistogram::new();
        a.merge(&StreamingHistogram::new());
        assert_eq!(a.total(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.quantile(0.5), None);
        a.record(9);
        assert_eq!(a.min(), Some(9));
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn streaming_merge_handles_mismatched_bucket_arrays() {
        // A histogram of tiny values has a short bucket array; one that
        // saw u64::MAX has the longest possible. Merging must work in
        // both directions and agree with recording the union directly.
        let mut small = StreamingHistogram::new();
        small.record(3);
        small.record(100);
        let mut huge = StreamingHistogram::new();
        huge.record(u64::MAX);
        huge.record(1 << 40);

        let mut union = StreamingHistogram::new();
        for v in [3, 100, u64::MAX, 1 << 40] {
            union.record(v);
        }
        let mut small_into_huge = huge.clone();
        small_into_huge.merge(&small);
        let mut huge_into_small = small.clone();
        huge_into_small.merge(&huge);
        assert_eq!(small_into_huge, union);
        assert_eq!(huge_into_small, union);
        assert_eq!(union.min(), Some(3));
        assert_eq!(union.max(), Some(u64::MAX));
        assert_eq!(union.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn streaming_merge_accumulates_the_exact_sum() {
        // `sum` is u128 so even repeated u64::MAX observations merge
        // without overflow, keeping `_sum` exposition and mean() exact.
        let mut a = StreamingHistogram::new();
        a.record(u64::MAX);
        a.record(u64::MAX);
        let mut b = StreamingHistogram::new();
        b.record(1);
        b.merge(&a);
        assert_eq!(b.sum(), 2 * (u64::MAX as u128) + 1);
        assert_eq!(b.total(), 3);
        let expected_mean = (2.0 * u64::MAX as f64 + 1.0) / 3.0;
        assert!((b.mean().unwrap() - expected_mean).abs() < 1e3);
    }

    #[test]
    fn streaming_empty_histogram_reports_none() {
        let h = StreamingHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.total(), 0);
    }
}
