//! Fixed-bin histograms, used to regenerate Figures 8 and 9 of the paper
//! (distribution of surrogate prediction errors for unseen configurations
//! and unseen workloads).

use crate::StatsError;

/// A histogram with equally sized bins over `[lo, hi)`; values outside the
/// range are clamped into the first/last bin so that every observation is
/// counted (matching how the paper's ±20% error plots bucket outliers).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 || lo >= hi {
            return Err(StatsError::Domain {
                what: "histogram range/bins",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation (clamped into range).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = if x < self.lo {
            0
        } else {
            (((x - self.lo) / w) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(bin_center, count)` pairs, ready for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// Fraction of observations whose bin center lies within `[-b, b]`.
    /// Used to report "most projections lie in the |5|% range" style claims.
    pub fn mass_within(&self, b: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let inside: u64 = self
            .centers()
            .iter()
            .filter(|(c, _)| c.abs() <= b)
            .map(|&(_, n)| n)
            .sum();
        inside as f64 / self.total as f64
    }

    /// Renders a small ASCII bar chart (one line per bin).
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (center, count) in self.centers() {
            let bar = (count as usize * width) / max as usize;
            out.push_str(&format!(
                "{center:>8.2} | {:<width$} {count}\n",
                "#".repeat(bar),
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend([0.5, 1.5, 9.9, 5.0, 4.999]);
        assert_eq!(h.count(0), 2); // 0.5, 1.5
        assert_eq!(h.count(2), 2); // 4.999, 5.0
        assert_eq!(h.count(4), 1); // 9.9
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(-1.0, 1.0, 4).unwrap();
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4).unwrap();
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn mass_within_band() {
        let mut h = Histogram::new(-10.0, 10.0, 20).unwrap();
        for _ in 0..8 {
            h.add(0.1);
        }
        h.add(9.0);
        h.add(-9.0);
        assert!((h.mass_within(5.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 1.5, 1.6, 2.5]);
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 3);
    }
}
