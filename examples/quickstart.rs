//! Quickstart: tune the simulated Cassandra-like datastore for one
//! workload and verify the improvement against the default configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rafiki::{EvalContext, RafikiTuner, TunerConfig};
use rafiki_engine::EngineConfig;

fn main() {
    // The evaluation context: simulated server, benchmark harness, and
    // workload template. `small()` keeps this example fast; see
    // `EvalContext::default()` for the full experiment scale.
    let ctx = EvalContext::small();

    // Fit the tuner: picks the key parameters (the paper's five, since the
    // fast profile skips the ANOVA screen), benchmarks a sampled set of
    // configurations across read ratios, and trains the ensemble surrogate.
    let mut tuner = RafikiTuner::new(ctx, TunerConfig::fast());
    let report = tuner.fit().expect("data collection and training succeed");
    println!(
        "trained surrogate on {} samples over parameters: {}",
        report.samples_collected,
        report.key_parameters.join(", ")
    );

    // Ask for a configuration for a read-heavy workload (90% reads) —
    // the regime where Cassandra's default (size-tiered, write-oriented)
    // configuration leaves the most on the table.
    let read_ratio = 0.9;
    let best = tuner.optimize(read_ratio).expect("tuner is fitted");
    println!(
        "GA searched with {} surrogate evaluations; predicted {:.0} ops/s",
        best.surrogate_evaluations, best.predicted_throughput
    );
    println!(
        "suggested: compaction={:?} CW={} FCZ={}MB MT={:.2} CC={}",
        best.config.compaction_method,
        best.config.concurrent_writes,
        best.config.file_cache_size_mb,
        best.config.memtable_cleanup_threshold,
        best.config.concurrent_compactors,
    );

    // Validate on the actual (simulated) datastore.
    let default_tput = tuner
        .context()
        .measure(read_ratio, &EngineConfig::default());
    let tuned_tput = tuner.context().measure(read_ratio, &best.config);
    println!(
        "measured: default {:.0} ops/s -> tuned {:.0} ops/s ({:+.1}%)",
        default_tput,
        tuned_tput,
        (tuned_tput / default_tput - 1.0) * 100.0
    );
}
