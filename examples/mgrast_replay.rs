//! MG-RAST trace replay: generate a 4-day synthetic trace, characterize it
//! the way Rafiki's workload-characterization stage does (§3.3) — windowed
//! read ratio + exponential key-reuse-distance fit — and replay one window
//! against the engine.
//!
//! ```text
//! cargo run --release --example mgrast_replay
//! ```

use rafiki_engine::{run_benchmark, Engine, EngineConfig, ServerSpec};
use rafiki_workload::characterize::{fit_krd, read_ratio, windowed_read_ratio};
use rafiki_workload::{
    BenchmarkSpec, MgRastModel, Operation, OperationSource, Regime, ReplaySource,
    WorkloadGenerator, WorkloadSpec,
};

fn main() {
    // 1. Generate the 4-day trace (384 windows of 15 minutes).
    let model = MgRastModel::default();
    let trace = model.generate();
    let rrs = trace.read_ratios();
    println!(
        "4-day MG-RAST-like trace: {} windows, mean RR {:.2}, {} abrupt transitions",
        trace.windows.len(),
        rrs.iter().sum::<f64>() / rrs.len() as f64,
        trace.abrupt_transitions(0.4),
    );
    let mut counts = std::collections::HashMap::new();
    for &rr in &rrs {
        *counts
            .entry(format!("{:?}", Regime::classify(rr)))
            .or_insert(0usize) += 1;
    }
    println!("regime occupancy: {counts:?}");

    // 2. Materialize one window's operations and characterize them.
    let window = &trace.windows[10];
    let spec = WorkloadSpec {
        read_ratio: window.read_ratio,
        krd_mean: trace.krd_mean,
        initial_keys: 40_000,
        ..WorkloadSpec::with_read_ratio(window.read_ratio)
    };
    let mut generator = WorkloadGenerator::new(spec, 7);
    let ops: Vec<Operation> = (0..60_000).map(|_| generator.next_op()).collect();

    println!(
        "window {}: generated RR {:.2}, observed RR {:.2}",
        window.index,
        window.read_ratio,
        read_ratio(&ops)
    );
    let series = windowed_read_ratio(&ops, 10_000);
    println!("RR stationarity across sub-windows: {series:.2?}");
    match fit_krd(&ops) {
        Ok(exp) => println!(
            "KRD exponential fit: lambda={:.3e} (mean reuse distance {:.0} ops)",
            exp.lambda,
            exp.mean()
        ),
        Err(e) => println!("KRD fit unavailable: {e}"),
    }

    // 3. Replay the captured operations against the engine.
    let mut engine = Engine::new(EngineConfig::default(), ServerSpec::default());
    engine.preload(40_000, 1_000);
    let mut replay = ReplaySource::new(ops);
    let bench = BenchmarkSpec {
        duration_secs: 2.0,
        warmup_secs: 0.5,
        clients: 32,
        sample_window_secs: 0.5,
    };
    let result = run_benchmark(&mut engine, &mut replay, &bench);
    println!(
        "replay on defaults: {:.0} ops/s (RR observed {:.2}, p99 {:.2} ms, {} SSTables live)",
        result.avg_ops_per_sec,
        result.observed_read_ratio(),
        result.p99_latency_ms,
        engine.table_count(),
    );
}
