//! Cluster tuning: reproduce the spirit of the paper's multi-server
//! experiment (§4.9, Table 3) — compare Rafiki-tuned vs default
//! configurations on a single node and on a two-node replicated cluster
//! with an extra shooter.
//!
//! ```text
//! cargo run --release --example cluster_tuning
//! ```

use rafiki::{EvalContext, RafikiTuner, TunerConfig};
use rafiki_engine::{Cluster, ClusterSpec, EngineConfig, ServerSpec};
use rafiki_workload::{BenchmarkSpec, WorkloadGenerator, WorkloadSpec};

fn cluster_throughput(cfg: &EngineConfig, nodes: usize, clients: usize, read_ratio: f64) -> f64 {
    let mut cluster = Cluster::new(
        cfg,
        ServerSpec::default(),
        // RF grows with the cluster "so that each instance stores an
        // equivalent number of keys as the single-server case".
        ClusterSpec::new(nodes, nodes),
        40_000,
        1_000,
    );
    let spec = WorkloadSpec {
        initial_keys: 40_000,
        ..WorkloadSpec::with_read_ratio(read_ratio)
    };
    let mut workload = WorkloadGenerator::new(spec, 11);
    let bench = BenchmarkSpec {
        duration_secs: 3.0,
        warmup_secs: 1.0,
        clients,
        sample_window_secs: 1.0,
    };
    cluster.run_benchmark(&mut workload, &bench).avg_ops_per_sec
}

fn main() {
    // Offline: fit the tuner on the single-node simulator. The fast
    // profile is enlarged a little here: multiserver gains in write-heavy
    // regimes are small (the paper reports 3-15%), so they need a surrogate
    // trained on more than the bare minimum of samples.
    let mut cfg = TunerConfig::fast();
    cfg.collection.configurations = 10;
    cfg.collection.read_ratios = vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut tuner = RafikiTuner::new(EvalContext::small(), cfg);
    tuner.fit().expect("offline training succeeds");

    println!("workload      setup         default      rafiki     improvement");
    let space = tuner.space().expect("fitted").clone();
    for read_ratio in [0.1, 0.5, 1.0] {
        // Same guard the online controller applies: keep the default unless
        // the surrogate predicts a real gain (small predicted gains are
        // within model noise and switching has a cost).
        let candidate = tuner.optimize(read_ratio).expect("fitted");
        let default_pred = tuner
            .predict(read_ratio, &space.default_genome())
            .expect("fitted");
        let tuned = if candidate.predicted_throughput > default_pred * 1.02 {
            candidate.config
        } else {
            EngineConfig::default()
        };
        for (nodes, clients, label) in [(1usize, 32usize, "single-server"), (2, 64, "two-servers ")]
        {
            let default_tput =
                cluster_throughput(&EngineConfig::default(), nodes, clients, read_ratio);
            let tuned_tput = cluster_throughput(&tuned, nodes, clients, read_ratio);
            println!(
                "RR={:<4.0}%     {}   {:>8.0}    {:>8.0}    {:+.1}%",
                read_ratio * 100.0,
                label,
                default_tput,
                tuned_tput,
                (tuned_tput / default_tput - 1.0) * 100.0
            );
        }
    }
    println!(
        "\nnote: gains concentrate in read-heavy regimes, as in the paper \
         (its two-server write-heavy gain was only +3.2%). The surrogate is \
         trained on single-node benchmarks, so write-heavy cluster cells — \
         where replication doubles the per-node write load — are at the edge \
         of its validity and can regress; the online controller's \
         predicted-gain guard exists for exactly this regime."
    );
}
