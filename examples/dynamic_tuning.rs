//! Dynamic tuning: drive the online controller across a day of
//! MG-RAST-like workload (abrupt read-heavy/write-heavy/mixed regime
//! switches, Figure 3 of the paper) and report how it reacts.
//!
//! ```text
//! cargo run --release --example dynamic_tuning
//! ```

use rafiki::{ControllerConfig, EvalContext, OnlineController, RafikiTuner, TunerConfig};
use rafiki_workload::{MgRastModel, Regime};

fn main() {
    // Offline phase: fit the tuner once.
    let mut tuner = RafikiTuner::new(EvalContext::small(), TunerConfig::fast());
    tuner.fit().expect("offline training succeeds");

    // A one-day trace at 15-minute windows with MG-RAST's regime dynamics.
    let trace = MgRastModel {
        days: 1,
        seed: 42,
        ..MgRastModel::default()
    }
    .generate();
    println!(
        "trace: {} windows of {} min, {} abrupt transitions (|ΔRR| >= 0.4)",
        trace.windows.len(),
        trace.window_minutes,
        trace.abrupt_transitions(0.4)
    );

    // Online phase: observe each window; the controller re-optimizes on
    // large read-ratio shifts and switches configurations when the
    // predicted gain justifies it.
    let mut controller =
        OnlineController::new(&tuner, ControllerConfig::default()).expect("tuner is fitted");
    let report = controller.run_trace(&trace).expect("trace replay succeeds");

    println!(
        "controller: {} re-optimizations, {} configuration switches",
        report.reoptimizations, report.switches
    );

    // Proactive mode (the paper's §6 future work): an online regime-Markov
    // forecaster lets the controller tune for the *predicted next* window.
    let mut proactive = OnlineController::new(
        &tuner,
        ControllerConfig {
            proactive: true,
            ..ControllerConfig::default()
        },
    )
    .expect("tuner is fitted");
    let proactive_report = proactive.run_trace(&trace).expect("trace replay succeeds");
    println!(
        "proactive controller: {} re-optimizations, {} switches (forecaster saw {} windows)",
        proactive_report.reoptimizations,
        proactive_report.switches,
        proactive.forecaster().observations()
    );
    for d in report.decisions.iter().take(24) {
        println!(
            "  window {:>3}  RR={:>5.2}  regime={:<10}  {}{}  predicted {:>8.0} ops/s",
            d.window,
            d.read_ratio,
            format!("{:?}", Regime::classify(d.read_ratio)),
            if d.reoptimized { "GA " } else { "-  " },
            if d.switched { "switch" } else { "      " },
            d.predicted_throughput,
        );
    }
    println!(
        "  … ({} more windows)",
        report.decisions.len().saturating_sub(24)
    );
}
