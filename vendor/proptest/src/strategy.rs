//! Sampling strategies: the `Strategy` trait plus the combinators the
//! workspace uses (ranges, tuples, `prop_map`, `vec`, `Union`, `Just`).

use crate::TestRng;
use rand::Rng;

/// A source of random test-case values.
///
/// Unlike real proptest there are no value trees or shrinking: a
/// strategy is just a deterministic sampler over a seeded RNG. `sample`
/// takes `&self` so trait objects work (`BoxedStrategy`, `Union`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Erases the strategy type (needed by `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Always produces clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice among erased strategies (the `prop_oneof!` backend;
/// real proptest supports weighted arms, this subset does not).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Element-count specification for [`vec`]: an exact `usize`, `lo..hi`,
/// or `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Produces `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`] (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Produces `HashSet`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`HashSetStrategy`] (`prop::collection::hash_set`).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> std::collections::HashSet<S::Value> {
        let target = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        let mut set = std::collections::HashSet::with_capacity(target);
        // Duplicates don't grow the set; cap the retries so a strategy
        // whose domain is smaller than `target` terminates with what it
        // managed to collect instead of spinning forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let x = (3i64..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
            let (a, b) = ((0u32..4), (10usize..=11)).sample(&mut rng);
            assert!(a < 4 && (10..=11).contains(&b));
            let doubled = (1u64..5).prop_map(|v| v * 2).sample(&mut rng);
            assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
        }
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            assert_eq!(vec(0.0f64..1.0, 6).sample(&mut rng).len(), 6);
            let v = vec(0u64..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let nested = vec(vec(0.0f64..1.0, 3), 1..4).sample(&mut rng);
            assert!(nested.iter().all(|row| row.len() == 3));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![
            (0u64..1).boxed(),
            (100u64..101).boxed(),
            Just(7u64).boxed(),
        ]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(
            seen,
            [0u64, 100, 7].into_iter().collect::<std::collections::HashSet<_>>()
        );
    }
}
