//! Offline vendored subset of the `proptest` API.
//!
//! Offline builds cannot fetch the real proptest, so this crate keeps
//! the workspace's property tests compiling and *running* with the same
//! call shape: the `proptest!` macro, range/tuple/`prop::collection::vec`
//! strategies, `.prop_map`, `prop_oneof!`, `prop_assert!` and
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real thing, deliberately accepted:
//!
//! - cases are drawn from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so runs are reproducible but not
//!   persisted/replayed through a failure file;
//! - there is **no shrinking**: a failing case reports the case number
//!   and the assertion message, not a minimized input;
//! - strategies are plain samplers (no value trees).

use std::fmt;

pub mod strategy;

/// The `prop` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{hash_set, vec, HashSetStrategy, SizeRange, VecStrategy};
    }
}

/// Deterministic RNG handed to strategies while sampling cases.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        use rand::SeedableRng;
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a hash of a test's identifier — the per-test RNG seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed property-test assertion (returned, not panicked, so the
/// harness can attach the case number).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Declares property tests over sampled inputs (no-shrinking subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::from_seed(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a property test, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {left:?} != {right:?} ({} != {})",
            stringify!($a),
            stringify!($b),
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {left:?} == {right:?} ({} == {})",
            stringify!($a),
            stringify!($b),
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Picks uniformly among the given strategies (unweighted subset).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
