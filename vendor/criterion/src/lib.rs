//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Offline builds cannot fetch the real criterion, so this crate keeps
//! the workspace's benches compiling and runnable with the same call
//! shape (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `b.iter`).
//! Instead of criterion's statistical pipeline it runs a short
//! fixed-iteration wall-clock measurement and prints mean time per
//! iteration — enough for `cargo bench --no-run` CI gates and for
//! eyeballing relative changes locally.

use std::time::Instant;

/// Iterations per measured sample (after one warm-up call).
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

/// A parameterized benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations (one warm-up
    /// call, then `iters` timed calls).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = t0.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        nanos_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.nanos_per_iter.is_nan() {
        println!("{label:<48} (no measurement)");
    } else if b.nanos_per_iter >= 1e6 {
        println!("{label:<48} {:>12.3} ms/iter", b.nanos_per_iter / 1e6);
    } else {
        println!("{label:<48} {:>12.1} ns/iter", b.nanos_per_iter);
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl BenchmarkGroup {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (a no-op; criterion prints summaries here).
    pub fn finish(self) {}
}

/// Re-export point for the conventional `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
