//! Offline vendored subset of `crossbeam`: the `thread::scope` API the
//! workspace uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which removes the need for crossbeam's own implementation
//! in offline builds).

pub mod thread {
    //! Scoped threads with crossbeam's call shape
    //! (`scope(|s| { s.spawn(|_| ...) })`).

    use std::any::Any;

    /// The scope handle passed to the closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic
        /// payload (crossbeam's signature).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
            'env: 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns once all of them finished. Unlike
    /// `std::thread::scope`, a panicking child does not propagate here —
    /// crossbeam reports success as long as the closure itself returned
    /// (joins surface child panics), which is the behavior the callers
    /// in this workspace rely on via `.expect(..)` on each join.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }
}
