//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without network access to a
//! crates registry, so the handful of `rand` APIs the crates actually
//! use — `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — are implemented here over a
//! xoshiro256++ generator. The stream differs from upstream `rand`'s
//! ChaCha-based `StdRng`, but every consumer in this repository only
//! relies on *determinism for a given seed*, never on the exact
//! upstream byte stream.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the high word of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators; only the `seed_from_u64` entry point is needed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministically).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` below `span` (> 0) without noticeable modulo bias
/// (widening multiply, as in Lemire's method without the rejection step;
/// the bias is < 2^-64 per draw, irrelevant for simulation workloads).
pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // 53-bit resolution over the closed interval.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-50i64..0);
            assert!((-50..0).contains(&x));
            let y = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 100-element shuffle should move something");
    }
}
