//! Sequence helpers (`SliceRandom::shuffle`).

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}
