//! Offline vendored `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! that downstream users with a real `serde` can serialize them, but no
//! code in this repository ever *invokes* serialization (the wire
//! protocol uses its own hand-rolled JSON codec in `rafiki-serve`). In
//! offline build environments the real `serde` is unavailable, so this
//! facade supplies the two marker traits and no-op derive macros: the
//! derives keep compiling and the `#[serde(...)]` helper attributes keep
//! being accepted, with zero runtime behavior.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
