//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! facade: each derive emits an empty marker-trait impl (the facade's
//! traits carry no methods) and accepts-and-ignores `#[serde(...)]`
//! helper attributes, so code written against real serde keeps
//! compiling in offline builds.

use proc_macro::{TokenStream, TokenTree};

/// The parsed shape of a derive input: just enough to emit an impl.
struct Input {
    /// Type name.
    name: String,
    /// Generic parameter list with bounds, without the angle brackets
    /// (empty for non-generic types), e.g. `'a, T: Clone, const N: usize`.
    params: String,
    /// Generic arguments for the self type, e.g. `'a, T, N`.
    args: String,
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct"
                    || id.to_string() == "enum"
                    || id.to_string() == "union" =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("expected type name after struct/enum, got {other:?}"),
                }
            }
            Some(_) => {}
            None => panic!("derive input ended before a struct/enum keyword"),
        }
    };

    // Optional generics: `<` ... matching `>` at depth 0.
    let mut params = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut glue_next = false; // no space after a lifetime tick
            for tt in tokens.by_ref() {
                let mut tick = false;
                if let TokenTree::Punct(ref p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        '\'' => tick = true,
                        _ => {}
                    }
                }
                if !params.is_empty() && !glue_next {
                    params.push(' ');
                }
                params.push_str(&tt.to_string());
                glue_next = tick;
            }
        }
    }
    let args = generic_args(&params);
    Input { name, params, args }
}

/// Extracts the bare generic argument names (`'a, T, N`) from a
/// parameter list with bounds (`'a, T: Clone + 'a, const N: usize`).
fn generic_args(params: &str) -> String {
    let mut args = Vec::new();
    let mut depth = 0i32;
    for piece in split_top_level_commas(params, &mut depth) {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let head = piece.split([':', '=']).next().unwrap_or("").trim();
        let name = head.strip_prefix("const ").unwrap_or(head).trim();
        if !name.is_empty() {
            args.push(name.to_string());
        }
    }
    args.join(", ")
}

fn split_top_level_commas<'s>(s: &'s str, depth: &mut i32) -> Vec<&'s str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' => *depth += 1,
            '>' | ')' | ']' => *depth -= 1,
            ',' if *depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let Input { name, params, args } = parse_input(input);
    let self_ty = if args.is_empty() {
        name.clone()
    } else {
        format!("{name}<{args}>")
    };
    let code = if deserialize {
        let lt_params = if params.is_empty() {
            "'de".to_string()
        } else {
            format!("'de, {params}")
        };
        format!("impl<{lt_params}> serde::Deserialize<'de> for {self_ty} {{}}")
    } else if params.is_empty() {
        format!("impl serde::Serialize for {self_ty} {{}}")
    } else {
        format!("impl<{params}> serde::Serialize for {self_ty} {{}}")
    };
    code.parse().expect("generated impl must parse")
}

/// Derives the facade's empty `Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

/// Derives the facade's empty `Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}
