//! Offline vendored subset of the `bytes` crate: the cheaply-clonable
//! `Bytes` view the storage engine uses for row payloads. Clones and
//! `slice` share one reference-counted allocation, preserving the
//! zero-copy property the engine's memory accounting relies on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes` (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of `range` sharing this view's storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Pointer to the first byte of the view.
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            offset: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_storage_zero_copy() {
        let b = Bytes::from((0u8..128).collect::<Vec<_>>());
        let s1 = b.slice(10..20);
        let s2 = b.slice(10..20);
        assert_eq!(s1, s2);
        assert_eq!(s1.as_ptr(), s2.as_ptr());
        assert_eq!(&s1[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let nested = s1.slice(2..=4);
        assert_eq!(&nested[..], &[12, 13, 14]);
    }

    #[test]
    fn empty_and_bounds() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.slice(..).len(), 3);
        assert_eq!(b.slice(3..3).len(), 0);
    }
}
